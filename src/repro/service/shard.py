"""The shard actor: one always-on asyncio task around one FleetEngine.

A shard owns a subset of the fleet's instances and serves their events
from a **bounded inbox** (`asyncio.Queue(maxsize=inbox_limit)`):
producers ``await put(...)`` and suspend while the shard is saturated,
which is the service's backpressure — socket readers stop reading, TCP
windows fill, and the client slows down instead of the server growing
an unbounded buffer.  ``try_put`` is the non-blocking variant for
callers that prefer an explicit overflow signal.

The actor loop drains the inbox in batches (everything immediately
available after the first blocking ``get``) and serves each batch
through the vectorized kernel: injects are grouped by per-instance
occurrence index — round *k* carries the *k*-th queued event of every
instance in the batch — which preserves per-instance event order while
dispatching whole rounds as single numpy operations.  Control messages
(:class:`~repro.service.messages.SnapshotRequest`,
:class:`~repro.service.messages.Reload`,
:class:`~repro.service.messages.Shutdown`) ride the same inbox, so
they observe every event enqueued before them.

:class:`ShardCore` is the event-loop-free heart of the actor (instance
registry + vectorized serving + migration); the ``multiprocessing``
worker of :mod:`repro.service.supervisor` drives the same core
synchronously from its pipe, so both shard backends serve events
identically by construction.
"""

from __future__ import annotations

import asyncio
import time
from typing import Dict, List, Optional, Sequence, Tuple, Union

import numpy as np

from ..runtime.events import Event
from ..runtime.fleet import FleetEngine, FleetResult
from .messages import (
    InjectBatch,
    InjectBatchPacked,
    InjectEvent,
    Reload,
    ShardStats,
    Shutdown,
    SnapshotRequest,
)

#: Default inbox capacity (messages, where one InjectBatch counts once).
DEFAULT_INBOX_LIMIT = 1024

#: Instance keys in ``[0, _DENSE_KEY_LIMIT)`` resolve to rows through a
#: flat int64 gather (one vector op per packed batch); keys outside the
#: range — negative or astronomically sparse — fall back to the dict.
_DENSE_KEY_LIMIT = 1 << 24

_ControlItem = Tuple[Union[SnapshotRequest, Reload, Shutdown], "asyncio.Future"]
_InboxItem = Union[InjectEvent, InjectBatch, InjectBatchPacked, _ControlItem]


class ShardCore:
    """Backend-independent shard state: instance registry over one kernel."""

    def __init__(self, shard_id: int, engine: FleetEngine) -> None:
        self.shard_id = shard_id
        self.engine = engine
        self._rows: Dict[int, int] = {}  # instance key -> engine row
        self._keys: List[int] = []  # engine row -> instance key
        #: dense accelerator mirroring ``_rows`` for in-range keys; -1
        #: marks unregistered.  Kept in sync by registration + migration.
        self._dense_rows = np.full(1024, -1, dtype=np.int64)
        self._started = time.monotonic()
        self.events_served = 0

    # ------------------------------------------------------------------
    # Registry plumbing (dict authoritative, dense gather accelerator)
    # ------------------------------------------------------------------
    def _dense_set(self, key: int, row: int) -> None:
        if 0 <= key < _DENSE_KEY_LIMIT:
            if key >= len(self._dense_rows):
                grown = np.full(
                    max(2 * len(self._dense_rows), key + 1), -1, dtype=np.int64
                )
                grown[: len(self._dense_rows)] = self._dense_rows
                self._dense_rows = grown
            self._dense_rows[key] = row

    def _dense_del(self, key: int) -> None:
        if 0 <= key < len(self._dense_rows):
            self._dense_rows[key] = -1

    def _register(self, keys: Sequence[int]) -> None:
        """Register fresh instance keys (callers pre-filter known ones)."""
        new_rows = self.engine.add_instances(len(keys))
        for key, row in zip(keys, new_rows.tolist()):
            self._rows[key] = row
            self._keys.append(key)
            self._dense_set(key, row)

    def _rows_for_keys(self, keys: np.ndarray) -> np.ndarray:
        """Vectorized instance-key → engine-row map, registering fresh keys."""
        kmin = int(keys.min())
        kmax = int(keys.max())
        if kmin < 0 or kmax >= _DENSE_KEY_LIMIT:
            # out-of-range keys: the dict path, one lookup per event
            rows_of = self._rows
            fresh = [k for k in keys.tolist() if k not in rows_of]
            if fresh:
                self._register(list(dict.fromkeys(fresh)))
            return np.array([rows_of[k] for k in keys.tolist()], dtype=np.int64)
        if kmax >= len(self._dense_rows):
            grown = np.full(
                max(2 * len(self._dense_rows), kmax + 1), -1, dtype=np.int64
            )
            grown[: len(self._dense_rows)] = self._dense_rows
            self._dense_rows = grown
        rows = self._dense_rows[keys]
        if (rows < 0).any():
            self._register(np.unique(keys[rows < 0]).tolist())
            rows = self._dense_rows[keys]
        return rows

    # ------------------------------------------------------------------
    # Serving
    # ------------------------------------------------------------------
    def serve_packed(self, batch: InjectBatchPacked) -> int:
        """Serve one packed batch: zero per-event Python objects.

        Rows are resolved with one gather, per-instance event order is
        preserved by grouping the batch into occurrence *rounds* (round
        ``k`` carries the ``k``-th event of every instance present) and
        each round is a single vectorized kernel dispatch.
        """
        count = len(batch)
        if count == 0:
            return 0
        rows = self._rows_for_keys(np.asarray(batch.instances, dtype=np.int64))
        sources = batch.sources
        signatures = batch.signatures
        engine = self.engine
        # stable sort by row: each row's events stay in arrival order and
        # form one contiguous run [starts[g], starts[g] + counts[g])
        order = np.argsort(rows, kind="stable")
        sorted_rows = rows[order]
        boundaries = np.empty(count, dtype=bool)
        boundaries[0] = True
        np.not_equal(sorted_rows[1:], sorted_rows[:-1], out=boundaries[1:])
        starts = np.flatnonzero(boundaries)
        counts = np.diff(np.append(starts, count))
        max_rounds = int(counts.max())
        if max_rounds == 1:
            engine.dispatch_ids(rows, sources, signatures)
        else:
            for k in range(max_rounds):
                sel = order[starts[counts > k] + k]
                engine.dispatch_ids(rows[sel], sources[sel], signatures[sel])
        self.events_served += count
        return count

    def serve_injects(self, injects: Sequence[InjectEvent]) -> int:
        """Serve a batch of injects, vectorized, in per-instance order."""
        if not injects:
            return 0
        engine = self.engine
        rows_of = self._rows
        fresh = [m.instance for m in injects if m.instance not in rows_of]
        if fresh:
            # preserve first-seen order, drop duplicates within the batch
            self._register(list(dict.fromkeys(fresh)))
        # round k = the k-th queued event of each instance in the batch:
        # per-instance order is preserved, rounds dispatch vectorized
        occurrence: Dict[int, int] = {}
        rounds: List[Tuple[List[int], List[Event]]] = []
        for m in injects:
            k = occurrence.get(m.instance, 0)
            occurrence[m.instance] = k + 1
            if k == len(rounds):
                rounds.append(([], []))
            rows, events = rounds[k]
            rows.append(rows_of[m.instance])
            events.append(
                Event(time=m.time, source=m.source, choices=m.choices)
            )
        for rows, events in rounds:
            engine.dispatch(rows, events)
        self.events_served += len(injects)
        return len(injects)

    def reload(self, reset_stats: bool = True) -> None:
        self.engine.reset_state(reset_stats=reset_stats)

    # ------------------------------------------------------------------
    # Introspection and results
    # ------------------------------------------------------------------
    def stats(self, queue_depth: int = 0) -> ShardStats:
        result = self.engine.result()
        elapsed = time.monotonic() - self._started
        return ShardStats(
            shard=self.shard_id,
            instances=self.engine.instances,
            events=result.stats.events_processed,
            cycles=result.stats.total_cycles,
            queue_depth=queue_depth,
            budget_stops=result.stats.budget_stops,
            throughput_eps=(
                self.events_served / elapsed if elapsed > 0 else 0.0
            ),
            percentiles=result.percentiles(),
        )

    def result(self) -> Tuple[List[int], FleetResult]:
        """The shard's instance keys (row order) and its FleetResult."""
        return list(self._keys), self.engine.result()

    # ------------------------------------------------------------------
    # Migration (supervisor-mediated work stealing)
    # ------------------------------------------------------------------
    @property
    def instance_keys(self) -> List[int]:
        return list(self._keys)

    def export_instance(self, key: int) -> Tuple[List[int], int, int]:
        """Remove ``key`` from this shard, returning its migratable state.

        Only safe once no in-flight events target ``key`` (the
        supervisor drains the inbox before migrating).
        """
        row = self._rows.pop(key)
        self._dense_del(key)
        state = self.engine.export_instance(row)
        moved_from = self.engine.remove_instance(row)
        moved_key = self._keys[moved_from]
        self._keys[row] = moved_key
        self._keys.pop()
        if moved_key != key:
            self._rows[moved_key] = row
            self._dense_set(moved_key, row)
        return state

    def import_instance(
        self, key: int, state: Tuple[Sequence[int], int, int]
    ) -> None:
        """Adopt a migrated instance exported from another shard."""
        if key in self._rows:
            raise ValueError(
                f"instance {key} already lives on shard {self.shard_id}"
            )
        row = self.engine.import_instance(state)
        self._rows[key] = row
        self._keys.append(key)
        self._dense_set(key, row)


class ShardActor:
    """One shard of the fleet: a bounded inbox draining into one core."""

    def __init__(
        self,
        shard_id: int,
        engine: FleetEngine,
        inbox_limit: int = DEFAULT_INBOX_LIMIT,
    ) -> None:
        self.core = ShardCore(shard_id, engine)
        self.shard_id = shard_id
        self.inbox: "asyncio.Queue[_InboxItem]" = asyncio.Queue(
            maxsize=inbox_limit
        )
        self._stopped = False

    # ------------------------------------------------------------------
    # Producer side
    # ------------------------------------------------------------------
    async def put(self, message: _InboxItem) -> None:
        """Enqueue; suspends the caller while the inbox is full."""
        await self.inbox.put(message)

    def try_put(self, message: _InboxItem) -> bool:
        """Non-blocking enqueue; ``False`` signals overflow (backpressure)."""
        try:
            self.inbox.put_nowait(message)
        except asyncio.QueueFull:
            return False
        return True

    # ------------------------------------------------------------------
    # The actor loop
    # ------------------------------------------------------------------
    async def run(self) -> None:
        """Serve the inbox until a :class:`Shutdown` message arrives."""
        while not self._stopped:
            first = await self.inbox.get()
            batch: List[_InboxItem] = [first]
            while True:
                try:
                    batch.append(self.inbox.get_nowait())
                except asyncio.QueueEmpty:
                    break
            try:
                self._serve_batch(batch)
            finally:
                for _ in batch:
                    self.inbox.task_done()

    def _serve_batch(self, batch: Sequence[_InboxItem]) -> None:
        """Serve one inbox drain: adaptive coalescing.

        Every packed batch drained in this pass coalesces into ONE
        concatenated vectorized dispatch instead of many small ones —
        the deeper the backlog, the larger (and cheaper per event) the
        round.  Plain injects keep their slow path; a run of one kind
        flushes before the other kind serves so per-instance order
        holds even when the two representations interleave.
        """
        injects: List[InjectEvent] = []
        packed: List[InjectBatchPacked] = []
        controls: List[_ControlItem] = []
        shutdown: Optional[_ControlItem] = None

        def flush_injects() -> None:
            if injects:
                self.core.serve_injects(injects)
                injects.clear()

        def flush_packed() -> None:
            if packed:
                self.core.serve_packed(InjectBatchPacked.concat(packed))
                packed.clear()

        for item in batch:
            if isinstance(item, InjectBatchPacked):
                flush_injects()
                packed.append(item)
            elif isinstance(item, InjectEvent):
                flush_packed()
                injects.append(item)
            elif isinstance(item, InjectBatch):
                flush_packed()
                injects.extend(item.events)
            else:
                message = item[0]
                if isinstance(message, Shutdown):
                    shutdown = item
                    if not message.drain:
                        injects = []
                        packed = []
                        break
                else:
                    controls.append(item)
        flush_injects()
        flush_packed()
        for message, future in controls:
            if isinstance(message, SnapshotRequest):
                self._resolve(future, self.stats())
            elif isinstance(message, Reload):
                self.core.reload(reset_stats=message.reset_stats)
                self._resolve(future, True)
        if shutdown is not None:
            self._stopped = True
            self._resolve(shutdown[1], self.core.result())

    @staticmethod
    def _resolve(future: "asyncio.Future", value: object) -> None:
        if not future.done():
            future.set_result(value)

    # ------------------------------------------------------------------
    # Delegation
    # ------------------------------------------------------------------
    @property
    def events_served(self) -> int:
        return self.core.events_served

    @property
    def instance_keys(self) -> List[int]:
        return self.core.instance_keys

    def stats(self) -> ShardStats:
        return self.core.stats(queue_depth=self.inbox.qsize())

    def export_instance(self, key: int) -> Tuple[List[int], int, int]:
        return self.core.export_instance(key)

    def import_instance(
        self, key: int, state: Tuple[Sequence[int], int, int]
    ) -> None:
        self.core.import_instance(key, state)
