"""Versioned JSON-lines telemetry for the running fleet service.

``repro-qss serve --telemetry FILE`` appends one JSON object per line
while the service runs: a ``shard`` record per shard per sampling tick
(throughput, queue depth, budget stops, cycle percentiles) plus one
``aggregate`` record per tick.  Every record carries the
:data:`TELEMETRY_SCHEMA` tag so downstream consumers can detect layout
changes; :func:`validate_telemetry_record` is the normative definition
of the layout and is pinned by ``tests/test_service_layer.py``.
"""

from __future__ import annotations

import json
from typing import IO, Any, Dict, Mapping, Optional

#: Version tag carried by every telemetry record.
TELEMETRY_SCHEMA = "repro-qss.telemetry/1"

_COMMON_FIELDS = {
    "schema": str,
    "kind": str,
    "elapsed_seconds": (int, float),
    "instances": int,
    "events": int,
    "events_delta": int,
    "throughput_eps": (int, float),
    "queue_depth": int,
    "budget_stops": int,
    "cycle_percentiles": Mapping,
}

_KINDS = ("shard", "aggregate")


def validate_telemetry_record(record: Mapping[str, Any]) -> None:
    """Raise ``ValueError`` unless ``record`` is a valid telemetry line."""
    if not isinstance(record, Mapping):
        raise ValueError("telemetry record must be a JSON object")
    schema = record.get("schema")
    if schema != TELEMETRY_SCHEMA:
        raise ValueError(
            f"unsupported telemetry schema {schema!r} "
            f"(expected {TELEMETRY_SCHEMA!r})"
        )
    kind = record.get("kind")
    if kind not in _KINDS:
        raise ValueError(f"telemetry kind must be one of {_KINDS}, got {kind!r}")
    for name, types in _COMMON_FIELDS.items():
        if name not in record:
            raise ValueError(f"telemetry record is missing field {name!r}")
        if not isinstance(record[name], types):  # type: ignore[arg-type]
            raise ValueError(
                f"telemetry field {name!r} has wrong type "
                f"{type(record[name]).__name__}"
            )
        if isinstance(record[name], bool):
            raise ValueError(f"telemetry field {name!r} has wrong type bool")
    if kind == "shard":
        shard = record.get("shard")
        if not isinstance(shard, int) or isinstance(shard, bool) or shard < 0:
            raise ValueError("shard telemetry needs a non-negative 'shard' id")
    for key, value in record["cycle_percentiles"].items():
        if not isinstance(key, str) or not isinstance(value, (int, float)):
            raise ValueError("cycle_percentiles must map strings to numbers")


class TelemetryWriter:
    """Append validated telemetry records to a JSON-lines file.

    Emits are **buffered**: each record is serialized into an in-memory
    list and the file sees one ``write`` + ``flush`` per
    :meth:`flush` call — the sampling loop emits all of a tick's
    records (one per shard plus the aggregate) and flushes once, so
    telemetry costs one syscall per interval instead of one per record.
    ``buffer_limit`` bounds memory against callers that never flush;
    :meth:`close` always flushes what remains.
    """

    def __init__(self, path: str, buffer_limit: int = 256) -> None:
        self.path = path
        self.buffer_limit = buffer_limit
        self._fh: Optional[IO[str]] = open(path, "a", encoding="utf-8")
        self._buffer: list = []
        self.records_written = 0

    def emit(self, record: Dict[str, Any]) -> None:
        record.setdefault("schema", TELEMETRY_SCHEMA)
        validate_telemetry_record(record)
        if self._fh is None:
            raise ValueError("telemetry writer is closed")
        self._buffer.append(json.dumps(record, sort_keys=True))
        self.records_written += 1
        if len(self._buffer) >= self.buffer_limit:
            self.flush()

    @property
    def buffered(self) -> int:
        """Records emitted but not yet written to the file."""
        return len(self._buffer)

    def flush(self) -> None:
        """Write every buffered record in one call and flush the file."""
        if self._fh is None:
            raise ValueError("telemetry writer is closed")
        if self._buffer:
            self._fh.write("\n".join(self._buffer) + "\n")
            self._buffer.clear()
        self._fh.flush()

    def close(self) -> None:
        if self._fh is not None:
            self.flush()
            self._fh.close()
            self._fh = None

    def __enter__(self) -> "TelemetryWriter":
        return self

    def __exit__(self, *exc: Any) -> None:
        self.close()
