"""The always-on fleet service: actor-style serving of net instances.

Layered on the :class:`~repro.runtime.fleet.FleetEngine` stepping
kernel:

- :mod:`~repro.service.messages` — frozen typed messages + the
  versioned JSON wire codec every endpoint speaks, plus the internal
  zero-copy representations: :class:`InjectBatchPacked` (pre-interned
  int64 id columns) and the binary frame codec the process-backed
  shards speak over their pipes.
- :mod:`~repro.service.shard` — the shard actor: a bounded inbox
  draining into one kernel in vectorized batches.
- :mod:`~repro.service.supervisor` — hash-sharded routing, async or
  process shard backends, snapshots, work stealing, drain-and-stop.
- :mod:`~repro.service.ingest` — the LDJSON socket server and the
  socket/in-process clients.
- :mod:`~repro.service.telemetry` — versioned JSON-lines telemetry.

``repro-qss serve --shards/--listen/--duration/--telemetry`` is the
CLI front end; ``tests/test_service_differential.py`` pins service
results equal to the one-shot batch path.
"""

from .ingest import IngestServer, LocalClient, ServiceClient, events_to_injects
from .messages import (
    FRAME_CONTROL,
    FRAME_PACKED,
    FRAME_RESULT,
    FRAME_SCHEMA,
    WIRE_SCHEMA,
    Ack,
    InjectBatch,
    InjectBatchPacked,
    InjectEvent,
    ProtocolError,
    Reload,
    ShardStats,
    Shutdown,
    SnapshotReply,
    SnapshotRequest,
    decode_frame,
    decode_message,
    encode_frame_control,
    encode_frame_packed,
    encode_frame_result,
    encode_message,
)
from .shard import DEFAULT_INBOX_LIMIT, ShardActor, ShardCore
from .supervisor import SERVICE_BACKENDS, FleetSupervisor, validate_backend
from .telemetry import TELEMETRY_SCHEMA, TelemetryWriter, validate_telemetry_record

__all__ = [
    "WIRE_SCHEMA",
    "FRAME_SCHEMA",
    "FRAME_CONTROL",
    "FRAME_PACKED",
    "FRAME_RESULT",
    "TELEMETRY_SCHEMA",
    "SERVICE_BACKENDS",
    "DEFAULT_INBOX_LIMIT",
    "Ack",
    "InjectBatch",
    "InjectBatchPacked",
    "InjectEvent",
    "ProtocolError",
    "Reload",
    "ShardStats",
    "Shutdown",
    "SnapshotReply",
    "SnapshotRequest",
    "decode_message",
    "encode_message",
    "decode_frame",
    "encode_frame_control",
    "encode_frame_packed",
    "encode_frame_result",
    "FleetSupervisor",
    "validate_backend",
    "ShardActor",
    "ShardCore",
    "IngestServer",
    "ServiceClient",
    "LocalClient",
    "events_to_injects",
    "TelemetryWriter",
    "validate_telemetry_record",
]
