"""Typed messages and the versioned JSON wire codec of the fleet service.

Every interaction with the service — socket ingest, the in-process
client, the parent↔worker pipes of the process-backed shards — speaks
the same protocol: frozen dataclass messages serialized as one JSON
object per line, each carrying the :data:`WIRE_SCHEMA` version tag and
a ``type`` discriminator.  The codec is total in both directions
(``decode_message(encode_message(m)) == m``) and *strict*: unknown
schemas, unknown types, missing or extra fields all raise
:class:`ProtocolError` rather than guessing, so protocol drift between
endpoints fails loudly at the boundary.

Request/response pairing uses the optional ``request_id`` carried by
:class:`SnapshotRequest`/:class:`Shutdown` and echoed by the matching
:class:`SnapshotReply`/:class:`Ack` — multiple requests can be in
flight on one connection.

Two *internal* representations ride alongside the public JSON codec:

* :class:`InjectBatchPacked` — the zero-copy inject batch: pre-interned
  ``(instance, source id, signature id)`` int64 ndarray columns,
  produced once at the ingest boundary and consumed by the shard
  kernels without touching another Python object per event.  It never
  crosses the *public* socket (clients speak strings; ids are private
  to one supervisor's intern tables), so it is deliberately **not**
  part of :data:`MESSAGE_TYPES`.
* The **binary frame codec** (:func:`encode_frame` /
  :func:`decode_frame`) — what the process-backed shards speak over
  their pipes: length-prefixed raw ndarray buffers for packed inject
  batches, with control messages falling back to the JSON wire codec
  inside a ``control`` frame and the final shard result travelling as
  one pickle frame at shutdown.
"""

from __future__ import annotations

import json
import pickle
import struct
from dataclasses import dataclass, field, fields
from typing import Any, Dict, List, Mapping, Sequence, Tuple, Type, Union

import numpy as np

#: Version tag carried by every wire message.  Bump on any incompatible
#: change to the message set or field layout.
WIRE_SCHEMA = "repro-qss.service/1"


class ProtocolError(ValueError):
    """A wire line that does not decode to a known service message."""


@dataclass(frozen=True)
class InjectEvent:
    """Dispatch one environment event to one fleet instance.

    ``instance`` is the caller's stable instance key (the supervisor
    routes it to a shard; unknown keys register fresh instances on
    first use).  ``source``/``time``/``choices`` mirror
    :class:`repro.runtime.events.Event`.
    """

    instance: int
    source: str
    time: float = 0.0
    choices: Mapping[str, str] = field(default_factory=dict)

    TYPE = "inject"


@dataclass(frozen=True)
class InjectBatch:
    """Dispatch many events in one message (amortizes codec + routing)."""

    events: Tuple[InjectEvent, ...]

    TYPE = "inject_batch"


@dataclass(frozen=True, eq=False)
class InjectBatchPacked:
    """Zero-copy inject batch: pre-interned int64 id columns.

    ``instances`` carries the callers' stable instance keys,
    ``sources`` compiled transition ids and ``signatures`` ids from the
    supervisor's shared :class:`~repro.runtime.fleet.SignatureTable`.
    The three arrays are index-aligned (event ``j`` is row ``j`` of
    each) and ordered — per-instance event order is their order here.
    Built once at the ingest boundary (:meth:`FleetSupervisor.pack`);
    shards dispatch the columns straight into the kernel.
    """

    instances: np.ndarray
    sources: np.ndarray
    signatures: np.ndarray

    TYPE = "inject_batch_packed"

    def __len__(self) -> int:
        return len(self.sources)

    def take(self, index: np.ndarray) -> "InjectBatchPacked":
        """The sub-batch selected by ``index`` (order preserved)."""
        return InjectBatchPacked(
            instances=self.instances[index],
            sources=self.sources[index],
            signatures=self.signatures[index],
        )

    @staticmethod
    def concat(batches: Sequence["InjectBatchPacked"]) -> "InjectBatchPacked":
        """Coalesce several packed batches into one (order preserved)."""
        if len(batches) == 1:
            return batches[0]
        return InjectBatchPacked(
            instances=np.concatenate([b.instances for b in batches]),
            sources=np.concatenate([b.sources for b in batches]),
            signatures=np.concatenate([b.signatures for b in batches]),
        )


@dataclass(frozen=True)
class SnapshotRequest:
    """Ask for aggregate + per-shard statistics (reply: :class:`SnapshotReply`)."""

    request_id: int = 0

    TYPE = "snapshot"


@dataclass(frozen=True)
class ShardStats:
    """One shard's live statistics, embedded in :class:`SnapshotReply`."""

    shard: int
    instances: int
    events: int
    cycles: int
    queue_depth: int
    budget_stops: int
    throughput_eps: float
    percentiles: Mapping[str, float] = field(default_factory=dict)

    TYPE = "shard_stats"


@dataclass(frozen=True)
class SnapshotReply:
    """Aggregate fleet statistics plus the per-shard breakdown."""

    request_id: int
    instances: int
    events: int
    cycles: int
    budget_stops: int
    shards: Tuple[ShardStats, ...] = ()

    TYPE = "snapshot_reply"


@dataclass(frozen=True)
class Shutdown:
    """Stop the service; ``drain=True`` serves queued events first."""

    drain: bool = True
    request_id: int = 0

    TYPE = "shutdown"


@dataclass(frozen=True)
class Reload:
    """Reset every instance to the initial marking without restarting.

    ``reset_stats=False`` keeps the accumulated accounting across the
    reload (markings restart, counters continue).
    """

    reset_stats: bool = True

    TYPE = "reload"


@dataclass(frozen=True)
class Ack:
    """Generic acknowledgement (shutdown confirmation, errors)."""

    request_id: int = 0
    ok: bool = True
    error: str = ""

    TYPE = "ack"


Message = Union[
    InjectEvent,
    InjectBatch,
    SnapshotRequest,
    ShardStats,
    SnapshotReply,
    Shutdown,
    Reload,
    Ack,
]

MESSAGE_TYPES: Dict[str, Type[Any]] = {
    cls.TYPE: cls
    for cls in (
        InjectEvent,
        InjectBatch,
        SnapshotRequest,
        ShardStats,
        SnapshotReply,
        Shutdown,
        Reload,
        Ack,
    )
}


def _to_payload(message: Message) -> Dict[str, Any]:
    payload: Dict[str, Any] = {}
    for spec in fields(message):
        value = getattr(message, spec.name)
        if isinstance(value, tuple):
            value = [_to_payload(item) if hasattr(item, "TYPE") else item for item in value]
        elif isinstance(value, Mapping):
            value = dict(value)
        payload[spec.name] = value
    return payload


def encode_message(message: Message) -> str:
    """Serialize one message to its wire line (no trailing newline)."""
    payload = _to_payload(message)
    payload["schema"] = WIRE_SCHEMA
    payload["type"] = message.TYPE
    return json.dumps(payload, separators=(",", ":"), sort_keys=True)


def _from_payload(cls: Type[Any], payload: Mapping[str, Any]) -> Any:
    names = {spec.name for spec in fields(cls)}
    extra = set(payload) - names
    if extra:
        raise ProtocolError(
            f"unknown field(s) {sorted(extra)} for message type {cls.TYPE!r}"
        )
    kwargs = dict(payload)
    try:
        if cls is InjectBatch:
            kwargs["events"] = tuple(
                _from_payload(InjectEvent, item) for item in kwargs.get("events", ())
            )
        elif cls is SnapshotReply:
            kwargs["shards"] = tuple(
                _from_payload(ShardStats, item) for item in kwargs.get("shards", ())
            )
        return cls(**kwargs)
    except TypeError as error:
        raise ProtocolError(
            f"bad payload for message type {cls.TYPE!r}: {error}"
        ) from None


def decode_message(line: Union[str, bytes]) -> Message:
    """Parse one wire line back into its typed message (strict)."""
    try:
        payload = json.loads(line)
    except json.JSONDecodeError as error:
        raise ProtocolError(f"wire line is not valid JSON: {error}") from None
    if not isinstance(payload, dict):
        raise ProtocolError("wire line must be a JSON object")
    schema = payload.pop("schema", None)
    if schema != WIRE_SCHEMA:
        raise ProtocolError(
            f"unsupported wire schema {schema!r} (expected {WIRE_SCHEMA!r})"
        )
    kind = payload.pop("type", None)
    cls = MESSAGE_TYPES.get(kind)
    if cls is None:
        raise ProtocolError(f"unknown message type {kind!r}")
    return _from_payload(cls, payload)


# ----------------------------------------------------------------------
# Binary frame codec (process-backend pipes)
# ----------------------------------------------------------------------
#: Version tag of the binary frame layout.  Bump on any change to the
#: frame kinds or section layout.
FRAME_SCHEMA = "repro-qss.frame/1"

#: One-byte frame discriminators.
FRAME_CONTROL = 0x00  # JSON wire-codec line (the fallback for controls)
FRAME_PACKED = 0x01  # packed inject batch: raw int64 ndarray sections
FRAME_RESULT = 0x02  # pickled terminal payload (the shard's final result)

_FRAME_MAGIC = b"RQF1"
_U32 = struct.Struct("<I")

#: Signature definitions ride the packed frame as a compact JSON list —
#: ``[[place, chosen], ...]`` per signature, in table-id order starting
#: at the frame's ``sig_base``, so the receiving table replays them into
#: exactly the sender's ids (see ``SignatureTable.definitions``).
SigDefs = List[Tuple[Tuple[str, str], ...]]


def encode_frame_control(message: Message) -> bytes:
    """Wrap one JSON wire line in a control frame."""
    return (
        _FRAME_MAGIC
        + bytes([FRAME_CONTROL])
        + encode_message(message).encode("utf-8")
    )


def encode_frame_result(payload: Any) -> bytes:
    """Wrap the shard's terminal payload (keys + FleetResult) in a frame."""
    return _FRAME_MAGIC + bytes([FRAME_RESULT]) + pickle.dumps(payload)


def encode_frame_packed(
    batch: InjectBatchPacked, sig_base: int = 0, sig_defs: Sequence = ()
) -> bytes:
    """Encode a packed inject batch as length-prefixed raw buffers.

    Layout after the magic + kind byte::

        u32 header_len | header JSON | instances | sources | signatures

    where each array section is ``len(batch) * 8`` bytes of little-endian
    int64 — ``ndarray.tobytes()`` of the columns, decoded zero-copy by
    ``np.frombuffer`` on the receiving side.  ``sig_defs`` carries the
    canonical signature definitions for table ids ``sig_base..`` that
    the receiver has not seen yet.
    """
    header = json.dumps(
        {
            "n": len(batch),
            "sig_base": sig_base,
            "sig_defs": [list(map(list, sig)) for sig in sig_defs],
        },
        separators=(",", ":"),
    ).encode("utf-8")
    sections = [
        _FRAME_MAGIC,
        bytes([FRAME_PACKED]),
        _U32.pack(len(header)),
        header,
        np.ascontiguousarray(batch.instances, dtype="<i8").tobytes(),
        np.ascontiguousarray(batch.sources, dtype="<i8").tobytes(),
        np.ascontiguousarray(batch.signatures, dtype="<i8").tobytes(),
    ]
    return b"".join(sections)


def decode_frame(data: bytes) -> Tuple[int, Any]:
    """Decode one binary frame into ``(kind, payload)``.

    ``payload`` is the decoded :class:`Message` for control frames, a
    ``(batch, sig_base, sig_defs)`` triple for packed frames and the
    unpickled object for result frames.  Malformed frames raise
    :class:`ProtocolError` — same strictness contract as the JSON codec.
    """
    if len(data) < 5 or data[:4] != _FRAME_MAGIC:
        raise ProtocolError("binary frame is missing the RQF1 magic")
    kind = data[4]
    body = memoryview(data)[5:]
    if kind == FRAME_CONTROL:
        return kind, decode_message(bytes(body))
    if kind == FRAME_RESULT:
        return kind, pickle.loads(body)
    if kind != FRAME_PACKED:
        raise ProtocolError(f"unknown binary frame kind {kind!r}")
    if len(body) < _U32.size:
        raise ProtocolError("packed frame is truncated before its header")
    (header_len,) = _U32.unpack_from(body, 0)
    header_end = _U32.size + header_len
    try:
        header = json.loads(bytes(body[_U32.size : header_end]))
        n = int(header["n"])
        sig_base = int(header["sig_base"])
        sig_defs: SigDefs = [
            tuple(tuple(pair) for pair in sig) for sig in header["sig_defs"]
        ]
    except (ValueError, KeyError, TypeError) as error:
        raise ProtocolError(f"bad packed frame header: {error}") from None
    section = 8 * n
    if len(body) - header_end != 3 * section:
        raise ProtocolError(
            f"packed frame payload is {len(body) - header_end} bytes, "
            f"expected {3 * section} for {n} events"
        )
    def column(k: int) -> np.ndarray:
        lo = header_end + k * section
        return np.frombuffer(body[lo : lo + section], dtype="<i8")
    batch = InjectBatchPacked(
        instances=column(0), sources=column(1), signatures=column(2)
    )
    return kind, (batch, sig_base, sig_defs)
