"""Typed messages and the versioned JSON wire codec of the fleet service.

Every interaction with the service — socket ingest, the in-process
client, the parent↔worker pipes of the process-backed shards — speaks
the same protocol: frozen dataclass messages serialized as one JSON
object per line, each carrying the :data:`WIRE_SCHEMA` version tag and
a ``type`` discriminator.  The codec is total in both directions
(``decode_message(encode_message(m)) == m``) and *strict*: unknown
schemas, unknown types, missing or extra fields all raise
:class:`ProtocolError` rather than guessing, so protocol drift between
endpoints fails loudly at the boundary.

Request/response pairing uses the optional ``request_id`` carried by
:class:`SnapshotRequest`/:class:`Shutdown` and echoed by the matching
:class:`SnapshotReply`/:class:`Ack` — multiple requests can be in
flight on one connection.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field, fields
from typing import Any, Dict, Mapping, Tuple, Type, Union

#: Version tag carried by every wire message.  Bump on any incompatible
#: change to the message set or field layout.
WIRE_SCHEMA = "repro-qss.service/1"


class ProtocolError(ValueError):
    """A wire line that does not decode to a known service message."""


@dataclass(frozen=True)
class InjectEvent:
    """Dispatch one environment event to one fleet instance.

    ``instance`` is the caller's stable instance key (the supervisor
    routes it to a shard; unknown keys register fresh instances on
    first use).  ``source``/``time``/``choices`` mirror
    :class:`repro.runtime.events.Event`.
    """

    instance: int
    source: str
    time: float = 0.0
    choices: Mapping[str, str] = field(default_factory=dict)

    TYPE = "inject"


@dataclass(frozen=True)
class InjectBatch:
    """Dispatch many events in one message (amortizes codec + routing)."""

    events: Tuple[InjectEvent, ...]

    TYPE = "inject_batch"


@dataclass(frozen=True)
class SnapshotRequest:
    """Ask for aggregate + per-shard statistics (reply: :class:`SnapshotReply`)."""

    request_id: int = 0

    TYPE = "snapshot"


@dataclass(frozen=True)
class ShardStats:
    """One shard's live statistics, embedded in :class:`SnapshotReply`."""

    shard: int
    instances: int
    events: int
    cycles: int
    queue_depth: int
    budget_stops: int
    throughput_eps: float
    percentiles: Mapping[str, float] = field(default_factory=dict)

    TYPE = "shard_stats"


@dataclass(frozen=True)
class SnapshotReply:
    """Aggregate fleet statistics plus the per-shard breakdown."""

    request_id: int
    instances: int
    events: int
    cycles: int
    budget_stops: int
    shards: Tuple[ShardStats, ...] = ()

    TYPE = "snapshot_reply"


@dataclass(frozen=True)
class Shutdown:
    """Stop the service; ``drain=True`` serves queued events first."""

    drain: bool = True
    request_id: int = 0

    TYPE = "shutdown"


@dataclass(frozen=True)
class Reload:
    """Reset every instance to the initial marking without restarting.

    ``reset_stats=False`` keeps the accumulated accounting across the
    reload (markings restart, counters continue).
    """

    reset_stats: bool = True

    TYPE = "reload"


@dataclass(frozen=True)
class Ack:
    """Generic acknowledgement (shutdown confirmation, errors)."""

    request_id: int = 0
    ok: bool = True
    error: str = ""

    TYPE = "ack"


Message = Union[
    InjectEvent,
    InjectBatch,
    SnapshotRequest,
    ShardStats,
    SnapshotReply,
    Shutdown,
    Reload,
    Ack,
]

MESSAGE_TYPES: Dict[str, Type[Any]] = {
    cls.TYPE: cls
    for cls in (
        InjectEvent,
        InjectBatch,
        SnapshotRequest,
        ShardStats,
        SnapshotReply,
        Shutdown,
        Reload,
        Ack,
    )
}


def _to_payload(message: Message) -> Dict[str, Any]:
    payload: Dict[str, Any] = {}
    for spec in fields(message):
        value = getattr(message, spec.name)
        if isinstance(value, tuple):
            value = [_to_payload(item) if hasattr(item, "TYPE") else item for item in value]
        elif isinstance(value, Mapping):
            value = dict(value)
        payload[spec.name] = value
    return payload


def encode_message(message: Message) -> str:
    """Serialize one message to its wire line (no trailing newline)."""
    payload = _to_payload(message)
    payload["schema"] = WIRE_SCHEMA
    payload["type"] = message.TYPE
    return json.dumps(payload, separators=(",", ":"), sort_keys=True)


def _from_payload(cls: Type[Any], payload: Mapping[str, Any]) -> Any:
    names = {spec.name for spec in fields(cls)}
    extra = set(payload) - names
    if extra:
        raise ProtocolError(
            f"unknown field(s) {sorted(extra)} for message type {cls.TYPE!r}"
        )
    kwargs = dict(payload)
    try:
        if cls is InjectBatch:
            kwargs["events"] = tuple(
                _from_payload(InjectEvent, item) for item in kwargs.get("events", ())
            )
        elif cls is SnapshotReply:
            kwargs["shards"] = tuple(
                _from_payload(ShardStats, item) for item in kwargs.get("shards", ())
            )
        return cls(**kwargs)
    except TypeError as error:
        raise ProtocolError(
            f"bad payload for message type {cls.TYPE!r}: {error}"
        ) from None


def decode_message(line: Union[str, bytes]) -> Message:
    """Parse one wire line back into its typed message (strict)."""
    try:
        payload = json.loads(line)
    except json.JSONDecodeError as error:
        raise ProtocolError(f"wire line is not valid JSON: {error}") from None
    if not isinstance(payload, dict):
        raise ProtocolError("wire line must be a JSON object")
    schema = payload.pop("schema", None)
    if schema != WIRE_SCHEMA:
        raise ProtocolError(
            f"unsupported wire schema {schema!r} (expected {WIRE_SCHEMA!r})"
        )
    kind = payload.pop("type", None)
    cls = MESSAGE_TYPES.get(kind)
    if cls is None:
        raise ProtocolError(f"unknown message type {kind!r}")
    return _from_payload(cls, payload)
