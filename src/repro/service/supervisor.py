"""The fleet supervisor: hash-sharded routing over always-on shard actors.

The supervisor owns N shards — each a :class:`~repro.service.shard`
actor around its own :class:`~repro.runtime.fleet.FleetEngine` — and
routes every instance key to one shard with a deterministic
multiplicative hash (plus an override map maintained by migration), so
one instance's events always land on one kernel in order.  Two shard
backends share the same :class:`~repro.service.shard.ShardCore`:

``async``
    Every shard is an asyncio task on the supervisor's event loop.
    The default: in-process, zero serialization, supports work
    stealing, and the backend the differential suite pins against the
    one-shot batch path.

``process``
    Every shard is a ``multiprocessing`` worker process; requests
    travel its pipe as wire-codec lines
    (:mod:`repro.service.messages`), replies resolve FIFO futures.
    Buys real parallelism on multi-core machines at serialization
    cost.

**Work stealing** (async backend): :meth:`FleetSupervisor.rebalance`
— called periodically when ``rebalance_interval`` is set — compares
shard inbox depths and migrates instances from the hottest shard to
the coldest one.  Migration is supervisor-mediated and loses nothing:
routing pauses under the supervisor lock, the hot inbox drains
(``join()``), the instances' marking/cycle/event state moves via
export/import, and the override map redirects future events.  Fleet
totals still count every charge exactly once because aggregate
accounting stays where it accrued while per-instance state travels.

:meth:`FleetSupervisor.stop` with ``drain=True`` serves every queued
event, then merges the per-shard results into one
:class:`~repro.runtime.fleet.FleetResult` ordered by instance key —
byte-identical to a one-shot :class:`~repro.runtime.fleet.FleetSimulator`
run over the same streams (pinned by ``tests/test_service_differential.py``).
"""

from __future__ import annotations

import asyncio
import time
from collections import deque
from typing import Deque, Dict, List, Optional, Sequence, Tuple, Union

import numpy as np

from ..petrinet import PetriNet
from ..petrinet.compiled import ENGINE_COMPILED, CompiledNet, compile_net
from ..petrinet.exceptions import NotEnabledError
from ..runtime.cost import CostModel
from ..runtime.fleet import FleetEngine, FleetResult, SignatureTable
from ..runtime.reactive import ModuleAssignment, validate_budget_policy
from ..runtime.rtos import ExecutionStats
from ..runtime.stochastic import TimingModel
from .messages import (
    FRAME_CONTROL,
    FRAME_PACKED,
    FRAME_RESULT,
    Ack,
    InjectBatch,
    InjectBatchPacked,
    InjectEvent,
    Reload,
    ShardStats,
    Shutdown,
    SnapshotReply,
    SnapshotRequest,
    decode_frame,
    encode_frame_control,
    encode_frame_packed,
    encode_frame_result,
)
from .shard import DEFAULT_INBOX_LIMIT, ShardActor, ShardCore

#: Supported shard backends.
SERVICE_BACKENDS = ("async", "process")

#: Knuth's multiplicative hash constant (2^32 / phi).
_HASH_MULTIPLIER = 2_654_435_761


def validate_backend(backend: str) -> str:
    if backend not in SERVICE_BACKENDS:
        raise ValueError(
            f"unknown service backend {backend!r} "
            f"(choose from {', '.join(SERVICE_BACKENDS)})"
        )
    return backend


class FleetSupervisor:
    """Routes instance keys over sharded fleet actors; merges their results."""

    def __init__(
        self,
        net: Union[PetriNet, CompiledNet],
        assignment: ModuleAssignment,
        cost_model: Optional[CostModel] = None,
        max_firings_per_event: int = 100_000,
        on_budget: str = "error",
        shards: int = 1,
        backend: str = "async",
        inbox_limit: int = DEFAULT_INBOX_LIMIT,
        rebalance_interval: Optional[float] = None,
        rebalance_threshold: int = 64,
        timing: Optional[TimingModel] = None,
    ) -> None:
        if shards < 1:
            raise ValueError("shards must be positive")
        self.backend = validate_backend(backend)
        if rebalance_interval is not None and self.backend != "async":
            raise ValueError("work stealing requires the async backend")
        self.net = net
        self.assignment = assignment
        self.cost = cost_model or CostModel()
        self.max_firings_per_event = max_firings_per_event
        self.on_budget = validate_budget_policy(on_budget)
        self.timing = timing
        self.shards = shards
        self.inbox_limit = inbox_limit
        self.rebalance_interval = rebalance_interval
        self.rebalance_threshold = rebalance_threshold
        # the ingest-boundary intern tables: every event is turned into
        # integer ids exactly once, here; async shard engines share the
        # signature table directly, process shards replay definition
        # deltas shipped inside the binary packed frames
        self.compiled: CompiledNet = (
            net if isinstance(net, CompiledNet) else compile_net(net)
        )
        self.signatures = SignatureTable(self.compiled)
        self._route_override: Dict[int, int] = {}
        self._route_lock: Optional[asyncio.Lock] = None
        self._actors: List[ShardActor] = []
        self._tasks: List["asyncio.Task"] = []
        self._handles: List["_ProcessShardHandle"] = []
        self._rebalance_task: Optional["asyncio.Task"] = None
        self.migrations = 0
        self._started_at = 0.0
        self._running = False

    # ------------------------------------------------------------------
    # Routing
    # ------------------------------------------------------------------
    def shard_of(self, instance: int) -> int:
        """Deterministic instance→shard routing (override map first)."""
        override = self._route_override.get(instance)
        if override is not None:
            return override
        return ((instance * _HASH_MULTIPLIER) & 0xFFFFFFFF) % self.shards

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    async def start(self) -> None:
        if self._running:
            raise RuntimeError("supervisor is already running")
        self._route_lock = asyncio.Lock()
        self._started_at = time.perf_counter()
        if self.backend == "async":
            for shard_id in range(self.shards):
                engine = FleetEngine(
                    self.compiled,
                    self.assignment,
                    cost_model=self.cost,
                    max_firings_per_event=self.max_firings_per_event,
                    on_budget=self.on_budget,
                    timing=self.timing,
                    signatures=self.signatures,
                )
                actor = ShardActor(shard_id, engine, inbox_limit=self.inbox_limit)
                self._actors.append(actor)
                self._tasks.append(asyncio.create_task(actor.run()))
            if self.rebalance_interval is not None:
                self._rebalance_task = asyncio.create_task(
                    self._rebalance_loop()
                )
        else:
            from ..petrinet.serialization import net_to_json

            named = (
                self.net.decompile()
                if isinstance(self.net, CompiledNet)
                else self.net
            )
            net_json = net_to_json(named)
            for shard_id in range(self.shards):
                handle = _ProcessShardHandle(
                    shard_id,
                    net_json,
                    dict(self.assignment.modules),
                    self.cost,
                    self.max_firings_per_event,
                    self.on_budget,
                    self.timing,
                    signatures=self.signatures,
                )
                await handle.start()
                self._handles.append(handle)
        self._running = True

    async def stop(self, drain: bool = True) -> FleetResult:
        """Stop every shard and merge their results by instance key."""
        if not self._running:
            raise RuntimeError("supervisor is not running")
        if self._rebalance_task is not None:
            self._rebalance_task.cancel()
            try:
                await self._rebalance_task
            except asyncio.CancelledError:
                pass
        parts: List[Tuple[List[int], FleetResult]] = []
        if self.backend == "async":
            futures = []
            for actor in self._actors:
                future: "asyncio.Future" = asyncio.get_running_loop().create_future()
                await actor.put((Shutdown(drain=drain), future))
                futures.append(future)
            parts = list(await asyncio.gather(*futures))
            await asyncio.gather(*self._tasks)
        else:
            parts = list(
                await asyncio.gather(
                    *(handle.shutdown(drain) for handle in self._handles)
                )
            )
            for handle in self._handles:
                await handle.join()
        self._running = False
        elapsed = time.perf_counter() - self._started_at
        return _merge_results(parts, elapsed)

    # ------------------------------------------------------------------
    # Ingest-boundary packing
    # ------------------------------------------------------------------
    def pack(self, events: Sequence[InjectEvent]) -> InjectBatchPacked:
        """Intern a batch of string-keyed injects into packed id columns.

        The *only* place the service touches event strings: source names
        resolve through the compiled transition index and choice
        resolutions through the shared :class:`SignatureTable`.  In the
        steady state every lookup is a dict hit; the returned ndarray
        batch flows through routing, inboxes and kernels zero-copy.
        Unknown source transitions fail here, at the boundary, rather
        than inside a shard's actor loop.
        """
        count = len(events)
        instances = np.empty(count, dtype=np.int64)
        sources = np.empty(count, dtype=np.int64)
        signatures = np.empty(count, dtype=np.int64)
        lookup_src = self.compiled.transition_index.get
        table = self.signatures
        lookup_sig = table._raw_index.get
        intern_raw = table.intern_raw
        for j, event in enumerate(events):
            t_id = lookup_src(event.source)
            if t_id is None:
                raise NotEnabledError(
                    f"unknown source transition {event.source!r}"
                )
            instances[j] = event.instance
            sources[j] = t_id
            choices = event.choices
            if choices:
                raw = tuple(choices.items())
                sig_id = lookup_sig(raw)
                if sig_id is None:
                    sig_id = intern_raw(raw)
                signatures[j] = sig_id
            else:
                signatures[j] = 0
        return InjectBatchPacked(
            instances=instances, sources=sources, signatures=signatures
        )

    def _shards_of(self, instances: np.ndarray) -> np.ndarray:
        """Vectorized :meth:`shard_of` over an instance-key column."""
        # int64 products wrap mod 2^64; & 0xFFFFFFFF recovers the exact
        # low 32 bits, so this matches the scalar Python-int hash
        with np.errstate(over="ignore"):
            shard_ids = (
                (instances * _HASH_MULTIPLIER) & 0xFFFFFFFF
            ) % self.shards
        if self._route_override:
            override_keys = np.fromiter(
                self._route_override, dtype=np.int64,
                count=len(self._route_override),
            )
            for position in np.flatnonzero(np.isin(instances, override_keys)):
                shard_ids[position] = self._route_override[
                    int(instances[position])
                ]
        return shard_ids

    # ------------------------------------------------------------------
    # Requests
    # ------------------------------------------------------------------
    async def inject(
        self, message: Union[InjectEvent, InjectBatch, InjectBatchPacked]
    ) -> None:
        """Route an inject to its shard(s); awaits under backpressure.

        Every representation converges to :class:`InjectBatchPacked`
        here — strings are interned once, then the per-shard split is a
        handful of ndarray gathers and the shards never intern again.
        """
        lock = self._require_running()
        async with lock:
            if isinstance(message, InjectEvent):
                packed = self.pack((message,))
            elif isinstance(message, InjectBatch):
                packed = self.pack(message.events)
            else:
                packed = message
            if self.shards == 1:
                await self._put(0, packed)
                return
            shard_ids = self._shards_of(packed.instances)
            for shard_id in np.unique(shard_ids).tolist():
                await self._put(shard_id, packed.take(shard_ids == shard_id))

    async def snapshot(self) -> SnapshotReply:
        """Aggregate + per-shard statistics (observes prior injects)."""
        self._require_running()
        if self.backend == "async":
            loop = asyncio.get_running_loop()
            futures = []
            for actor in self._actors:
                future: "asyncio.Future" = loop.create_future()
                await actor.put((SnapshotRequest(), future))
                futures.append(future)
            stats: List[ShardStats] = list(await asyncio.gather(*futures))
        else:
            stats = list(
                await asyncio.gather(
                    *(handle.snapshot() for handle in self._handles)
                )
            )
        return SnapshotReply(
            request_id=0,
            instances=sum(s.instances for s in stats),
            events=sum(s.events for s in stats),
            cycles=sum(s.cycles for s in stats),
            budget_stops=sum(s.budget_stops for s in stats),
            shards=tuple(stats),
        )

    async def reload(self, reset_stats: bool = True) -> None:
        """Reset every shard's instances to the initial marking."""
        self._require_running()
        if self.backend == "async":
            loop = asyncio.get_running_loop()
            futures = []
            for actor in self._actors:
                future: "asyncio.Future" = loop.create_future()
                await actor.put((Reload(reset_stats=reset_stats), future))
                futures.append(future)
            await asyncio.gather(*futures)
        else:
            await asyncio.gather(
                *(
                    handle.reload(reset_stats=reset_stats)
                    for handle in self._handles
                )
            )

    # ------------------------------------------------------------------
    # Work stealing
    # ------------------------------------------------------------------
    async def rebalance(
        self,
        source: Optional[int] = None,
        target: Optional[int] = None,
        count: Optional[int] = None,
    ) -> int:
        """Migrate instances from the hottest shard to the coldest one.

        Without arguments, picks the deepest/shallowest inboxes and acts
        only when the depth gap exceeds ``rebalance_threshold``;
        explicit ``source``/``target``/``count`` force a migration (the
        deterministic path the tests drive).  Returns the number of
        instances moved.
        """
        self._require_running()
        if self.backend != "async":
            raise RuntimeError("work stealing requires the async backend")
        if self.shards < 2:
            return 0
        lock = self._route_lock
        async with lock:
            if source is None or target is None:
                depths = [actor.inbox.qsize() for actor in self._actors]
                source = int(np.argmax(depths))
                target = int(np.argmin(depths))
                if (
                    source == target
                    or depths[source] - depths[target]
                    < self.rebalance_threshold
                ):
                    return 0
            hot = self._actors[source]
            cold = self._actors[target]
            # no new events can route while we hold the lock; wait until
            # the hot shard has served everything already queued so the
            # exported state is complete
            await hot.inbox.join()
            keys = hot.instance_keys
            if count is None:
                count = max(1, len(keys) // 4)
            moved = keys[-count:] if count else []
            for key in moved:
                cold.import_instance(key, hot.export_instance(key))
                self._route_override[key] = target
            self.migrations += len(moved)
            return len(moved)

    async def _rebalance_loop(self) -> None:
        while True:
            await asyncio.sleep(self.rebalance_interval)
            await self.rebalance()

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    def _require_running(self) -> asyncio.Lock:
        if not self._running:
            raise RuntimeError("supervisor is not running")
        return self._route_lock

    async def _put(
        self, shard_id: int, message: Union[InjectEvent, InjectBatch]
    ) -> None:
        if self.backend == "async":
            await self._actors[shard_id].put(message)
        else:
            await self._handles[shard_id].send(message)


def _merge_results(
    parts: Sequence[Tuple[List[int], FleetResult]], elapsed: float
) -> FleetResult:
    """Merge per-shard results into one fleet result ordered by key."""
    aggregate = ExecutionStats()
    keyed: List[Tuple[int, int, int, int]] = []
    timed = any(result.instance_ticks is not None for _, result in parts)
    for keys, result in parts:
        aggregate.merge(result.stats)
        ticks = (
            result.instance_ticks.tolist()
            if result.instance_ticks is not None
            else [0] * len(keys)
        )
        keyed.extend(
            zip(
                keys,
                result.instance_cycles.tolist(),
                result.instance_events.tolist(),
                ticks,
            )
        )
    keyed.sort()
    cycles = np.array([c for _, c, _, _ in keyed], dtype=np.int64)
    events = np.array([e for _, _, e, _ in keyed], dtype=np.int64)
    return FleetResult(
        stats=aggregate,
        instance_cycles=cycles,
        instance_events=events,
        engine=ENGINE_COMPILED,
        elapsed_seconds=elapsed,
        instance_ticks=(
            np.array([t for _, _, _, t in keyed], dtype=np.int64)
            if timed
            else None
        ),
    )


# ----------------------------------------------------------------------
# Process backend
# ----------------------------------------------------------------------
class _ProcessShardHandle:
    """Parent-side endpoint of one worker-process shard.

    Everything on the pipe is a binary frame (:mod:`repro.service.messages`):
    packed inject batches travel as length-prefixed raw int64 buffers,
    control requests as JSON wire lines inside control frames, and the
    terminal ``(keys, FleetResult)`` as one pickle frame.  Replies
    resolve a FIFO of pending futures (the pipe preserves order, so no
    request ids are needed).  Blocking pipe operations run in worker
    threads (``asyncio.to_thread``) so the event loop never stalls on a
    full pipe buffer.

    The handle also keeps its worker's :class:`SignatureTable` replica
    consistent: ``_sigs_synced`` is the high-water mark of signature
    ids the worker has seen, and every packed frame carries the
    definitions interned since — the worker replays them in id order,
    so both tables assign identical ids by construction.
    """

    def __init__(
        self,
        shard_id: int,
        net_json: str,
        modules: Dict[str, str],
        cost: CostModel,
        max_firings: int,
        on_budget: str,
        timing: Optional[TimingModel] = None,
        signatures: Optional[SignatureTable] = None,
    ) -> None:
        self.shard_id = shard_id
        self._spec = (net_json, modules, cost, max_firings, on_budget, timing)
        self._signatures = signatures
        self._sigs_synced = 1  # id 0 (the empty signature) is implicit
        self._process: Optional["object"] = None
        self._conn = None
        self._pending: Deque["asyncio.Future"] = deque()
        self._send_lock: Optional[asyncio.Lock] = None
        self._reader: Optional["asyncio.Task"] = None

    async def start(self) -> None:
        import multiprocessing

        parent, child = multiprocessing.Pipe()
        process = multiprocessing.Process(
            target=_shard_worker,
            args=(child, self.shard_id) + self._spec,
            daemon=True,
        )
        process.start()
        child.close()
        self._process = process
        self._conn = parent
        self._send_lock = asyncio.Lock()
        self._reader = asyncio.create_task(self._read_loop())

    async def _read_loop(self) -> None:
        while True:
            try:
                data = await asyncio.to_thread(self._conn.recv_bytes)
            except (EOFError, OSError):
                break
            kind, reply = decode_frame(data)
            if self._pending:
                future = self._pending.popleft()
                if not future.done():
                    future.set_result(reply)
            if kind == FRAME_RESULT:  # the final (keys, FleetResult)
                break

    async def _request(self, message) -> "asyncio.Future":
        future: "asyncio.Future" = asyncio.get_running_loop().create_future()
        async with self._send_lock:
            self._pending.append(future)
            await asyncio.to_thread(
                self._conn.send_bytes, encode_frame_control(message)
            )
        return future

    async def send(
        self, message: Union[InjectEvent, InjectBatch, InjectBatchPacked]
    ) -> None:
        async with self._send_lock:
            if isinstance(message, InjectBatchPacked):
                base = self._sigs_synced
                defs = self._signatures.definitions(base)
                data = encode_frame_packed(message, sig_base=base, sig_defs=defs)
                self._sigs_synced = base + len(defs)
            else:
                data = encode_frame_control(message)
            await asyncio.to_thread(self._conn.send_bytes, data)

    async def snapshot(self) -> ShardStats:
        return await (await self._request(SnapshotRequest()))

    async def reload(self, reset_stats: bool = True) -> None:
        await (await self._request(Reload(reset_stats=reset_stats)))

    async def shutdown(self, drain: bool) -> Tuple[List[int], FleetResult]:
        return await (await self._request(Shutdown(drain=drain)))

    async def join(self) -> None:
        if self._reader is not None:
            await self._reader
        if self._process is not None:
            await asyncio.to_thread(self._process.join, 10)
        if self._conn is not None:
            self._conn.close()


def _shard_worker(
    conn,
    shard_id: int,
    net_json: str,
    modules: Dict[str, str],
    cost: CostModel,
    max_firings: int,
    on_budget: str,
    timing: Optional[TimingModel],
) -> None:  # pragma: no cover - runs inside the worker process
    """Synchronous shard loop: drain the pipe into a ShardCore.

    The worker keeps a :class:`SignatureTable` replica of the
    supervisor's intern table — packed frames carry the definitions of
    any signatures interned since the last frame, replayed here in id
    order so a signature id means the same resolution on both sides of
    the pipe.  Like the async actor, every packed batch drained in one
    pass coalesces into a single vectorized dispatch.
    """
    from ..petrinet.compiled import compile_net as _compile
    from ..petrinet.serialization import net_from_json

    cnet = _compile(net_from_json(net_json))
    signatures = SignatureTable(cnet)
    engine = FleetEngine(
        cnet,
        ModuleAssignment(modules=modules),
        cost_model=cost,
        max_firings_per_event=max_firings,
        on_budget=on_budget,
        timing=timing,
        signatures=signatures,
    )
    core = ShardCore(shard_id, engine)

    def sync_signatures(sig_base: int, sig_defs) -> None:
        if not sig_defs:
            return
        if signatures.count != sig_base:
            raise RuntimeError(
                f"signature table out of sync: worker has "
                f"{signatures.count} ids, frame starts at {sig_base}"
            )
        for offset, definition in enumerate(sig_defs):
            assigned = signatures.intern(definition)
            if assigned != sig_base + offset:
                raise RuntimeError(
                    f"signature replay drift: {definition!r} interned as "
                    f"{assigned}, expected {sig_base + offset}"
                )

    while True:
        try:
            frames = [decode_frame(conn.recv_bytes())]
        except EOFError:
            break
        while conn.poll():
            frames.append(decode_frame(conn.recv_bytes()))
        injects: List[InjectEvent] = []
        packed: List[InjectBatchPacked] = []

        def flush_injects() -> None:
            if injects:
                core.serve_injects(injects)
                injects.clear()

        def flush_packed() -> None:
            if packed:
                core.serve_packed(InjectBatchPacked.concat(packed))
                packed.clear()

        def flush() -> None:
            flush_injects()
            flush_packed()

        done = False
        for kind, payload in frames:
            if kind == FRAME_PACKED:
                batch, sig_base, sig_defs = payload
                sync_signatures(sig_base, sig_defs)
                flush_injects()
                packed.append(batch)
                continue
            message = payload
            if isinstance(message, InjectEvent):
                flush_packed()
                injects.append(message)
            elif isinstance(message, InjectBatch):
                flush_packed()
                injects.extend(message.events)
            elif isinstance(message, SnapshotRequest):
                flush()
                conn.send_bytes(
                    encode_frame_control(core.stats(queue_depth=0))
                )
            elif isinstance(message, Reload):
                flush()
                core.reload(reset_stats=message.reset_stats)
                conn.send_bytes(encode_frame_control(Ack()))
            elif isinstance(message, Shutdown):
                if message.drain:
                    flush()
                conn.send_bytes(encode_frame_result(core.result()))
                done = True
                break
        if done:
            break
        flush()
    conn.close()
