"""The fleet supervisor: hash-sharded routing over always-on shard actors.

The supervisor owns N shards — each a :class:`~repro.service.shard`
actor around its own :class:`~repro.runtime.fleet.FleetEngine` — and
routes every instance key to one shard with a deterministic
multiplicative hash (plus an override map maintained by migration), so
one instance's events always land on one kernel in order.  Two shard
backends share the same :class:`~repro.service.shard.ShardCore`:

``async``
    Every shard is an asyncio task on the supervisor's event loop.
    The default: in-process, zero serialization, supports work
    stealing, and the backend the differential suite pins against the
    one-shot batch path.

``process``
    Every shard is a ``multiprocessing`` worker process; requests
    travel its pipe as wire-codec lines
    (:mod:`repro.service.messages`), replies resolve FIFO futures.
    Buys real parallelism on multi-core machines at serialization
    cost.

**Work stealing** (async backend): :meth:`FleetSupervisor.rebalance`
— called periodically when ``rebalance_interval`` is set — compares
shard inbox depths and migrates instances from the hottest shard to
the coldest one.  Migration is supervisor-mediated and loses nothing:
routing pauses under the supervisor lock, the hot inbox drains
(``join()``), the instances' marking/cycle/event state moves via
export/import, and the override map redirects future events.  Fleet
totals still count every charge exactly once because aggregate
accounting stays where it accrued while per-instance state travels.

:meth:`FleetSupervisor.stop` with ``drain=True`` serves every queued
event, then merges the per-shard results into one
:class:`~repro.runtime.fleet.FleetResult` ordered by instance key —
byte-identical to a one-shot :class:`~repro.runtime.fleet.FleetSimulator`
run over the same streams (pinned by ``tests/test_service_differential.py``).
"""

from __future__ import annotations

import asyncio
import time
from collections import deque
from typing import Deque, Dict, List, Optional, Sequence, Tuple, Union

import numpy as np

from ..petrinet import PetriNet
from ..petrinet.compiled import ENGINE_COMPILED, CompiledNet, compile_net
from ..runtime.cost import CostModel
from ..runtime.fleet import FleetEngine, FleetResult
from ..runtime.reactive import ModuleAssignment, validate_budget_policy
from ..runtime.rtos import ExecutionStats
from ..runtime.stochastic import TimingModel
from .messages import (
    Ack,
    InjectBatch,
    InjectEvent,
    Reload,
    ShardStats,
    Shutdown,
    SnapshotReply,
    SnapshotRequest,
    decode_message,
    encode_message,
)
from .shard import DEFAULT_INBOX_LIMIT, ShardActor, ShardCore

#: Supported shard backends.
SERVICE_BACKENDS = ("async", "process")

#: Knuth's multiplicative hash constant (2^32 / phi).
_HASH_MULTIPLIER = 2_654_435_761


def validate_backend(backend: str) -> str:
    if backend not in SERVICE_BACKENDS:
        raise ValueError(
            f"unknown service backend {backend!r} "
            f"(choose from {', '.join(SERVICE_BACKENDS)})"
        )
    return backend


class FleetSupervisor:
    """Routes instance keys over sharded fleet actors; merges their results."""

    def __init__(
        self,
        net: Union[PetriNet, CompiledNet],
        assignment: ModuleAssignment,
        cost_model: Optional[CostModel] = None,
        max_firings_per_event: int = 100_000,
        on_budget: str = "error",
        shards: int = 1,
        backend: str = "async",
        inbox_limit: int = DEFAULT_INBOX_LIMIT,
        rebalance_interval: Optional[float] = None,
        rebalance_threshold: int = 64,
        timing: Optional[TimingModel] = None,
    ) -> None:
        if shards < 1:
            raise ValueError("shards must be positive")
        self.backend = validate_backend(backend)
        if rebalance_interval is not None and self.backend != "async":
            raise ValueError("work stealing requires the async backend")
        self.net = net
        self.assignment = assignment
        self.cost = cost_model or CostModel()
        self.max_firings_per_event = max_firings_per_event
        self.on_budget = validate_budget_policy(on_budget)
        self.timing = timing
        self.shards = shards
        self.inbox_limit = inbox_limit
        self.rebalance_interval = rebalance_interval
        self.rebalance_threshold = rebalance_threshold
        self._route_override: Dict[int, int] = {}
        self._route_lock: Optional[asyncio.Lock] = None
        self._actors: List[ShardActor] = []
        self._tasks: List["asyncio.Task"] = []
        self._handles: List["_ProcessShardHandle"] = []
        self._rebalance_task: Optional["asyncio.Task"] = None
        self.migrations = 0
        self._started_at = 0.0
        self._running = False

    # ------------------------------------------------------------------
    # Routing
    # ------------------------------------------------------------------
    def shard_of(self, instance: int) -> int:
        """Deterministic instance→shard routing (override map first)."""
        override = self._route_override.get(instance)
        if override is not None:
            return override
        return ((instance * _HASH_MULTIPLIER) & 0xFFFFFFFF) % self.shards

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    async def start(self) -> None:
        if self._running:
            raise RuntimeError("supervisor is already running")
        self._route_lock = asyncio.Lock()
        self._started_at = time.perf_counter()
        if self.backend == "async":
            compiled = (
                self.net
                if isinstance(self.net, CompiledNet)
                else compile_net(self.net)
            )
            for shard_id in range(self.shards):
                engine = FleetEngine(
                    compiled,
                    self.assignment,
                    cost_model=self.cost,
                    max_firings_per_event=self.max_firings_per_event,
                    on_budget=self.on_budget,
                    timing=self.timing,
                )
                actor = ShardActor(shard_id, engine, inbox_limit=self.inbox_limit)
                self._actors.append(actor)
                self._tasks.append(asyncio.create_task(actor.run()))
            if self.rebalance_interval is not None:
                self._rebalance_task = asyncio.create_task(
                    self._rebalance_loop()
                )
        else:
            from ..petrinet.serialization import net_to_json

            named = (
                self.net.decompile()
                if isinstance(self.net, CompiledNet)
                else self.net
            )
            net_json = net_to_json(named)
            for shard_id in range(self.shards):
                handle = _ProcessShardHandle(
                    shard_id,
                    net_json,
                    dict(self.assignment.modules),
                    self.cost,
                    self.max_firings_per_event,
                    self.on_budget,
                    self.timing,
                )
                await handle.start()
                self._handles.append(handle)
        self._running = True

    async def stop(self, drain: bool = True) -> FleetResult:
        """Stop every shard and merge their results by instance key."""
        if not self._running:
            raise RuntimeError("supervisor is not running")
        if self._rebalance_task is not None:
            self._rebalance_task.cancel()
            try:
                await self._rebalance_task
            except asyncio.CancelledError:
                pass
        parts: List[Tuple[List[int], FleetResult]] = []
        if self.backend == "async":
            futures = []
            for actor in self._actors:
                future: "asyncio.Future" = asyncio.get_running_loop().create_future()
                await actor.put((Shutdown(drain=drain), future))
                futures.append(future)
            parts = list(await asyncio.gather(*futures))
            await asyncio.gather(*self._tasks)
        else:
            parts = list(
                await asyncio.gather(
                    *(handle.shutdown(drain) for handle in self._handles)
                )
            )
            for handle in self._handles:
                await handle.join()
        self._running = False
        elapsed = time.perf_counter() - self._started_at
        return _merge_results(parts, elapsed)

    # ------------------------------------------------------------------
    # Requests
    # ------------------------------------------------------------------
    async def inject(self, message: Union[InjectEvent, InjectBatch]) -> None:
        """Route an inject to its shard(s); awaits under backpressure."""
        lock = self._require_running()
        async with lock:
            if isinstance(message, InjectEvent):
                await self._put(self.shard_of(message.instance), message)
                return
            by_shard: Dict[int, List[InjectEvent]] = {}
            for event in message.events:
                by_shard.setdefault(self.shard_of(event.instance), []).append(
                    event
                )
            for shard_id, events in by_shard.items():
                await self._put(shard_id, InjectBatch(events=tuple(events)))

    async def snapshot(self) -> SnapshotReply:
        """Aggregate + per-shard statistics (observes prior injects)."""
        self._require_running()
        if self.backend == "async":
            loop = asyncio.get_running_loop()
            futures = []
            for actor in self._actors:
                future: "asyncio.Future" = loop.create_future()
                await actor.put((SnapshotRequest(), future))
                futures.append(future)
            stats: List[ShardStats] = list(await asyncio.gather(*futures))
        else:
            stats = list(
                await asyncio.gather(
                    *(handle.snapshot() for handle in self._handles)
                )
            )
        return SnapshotReply(
            request_id=0,
            instances=sum(s.instances for s in stats),
            events=sum(s.events for s in stats),
            cycles=sum(s.cycles for s in stats),
            budget_stops=sum(s.budget_stops for s in stats),
            shards=tuple(stats),
        )

    async def reload(self, reset_stats: bool = True) -> None:
        """Reset every shard's instances to the initial marking."""
        self._require_running()
        if self.backend == "async":
            loop = asyncio.get_running_loop()
            futures = []
            for actor in self._actors:
                future: "asyncio.Future" = loop.create_future()
                await actor.put((Reload(reset_stats=reset_stats), future))
                futures.append(future)
            await asyncio.gather(*futures)
        else:
            await asyncio.gather(
                *(
                    handle.reload(reset_stats=reset_stats)
                    for handle in self._handles
                )
            )

    # ------------------------------------------------------------------
    # Work stealing
    # ------------------------------------------------------------------
    async def rebalance(
        self,
        source: Optional[int] = None,
        target: Optional[int] = None,
        count: Optional[int] = None,
    ) -> int:
        """Migrate instances from the hottest shard to the coldest one.

        Without arguments, picks the deepest/shallowest inboxes and acts
        only when the depth gap exceeds ``rebalance_threshold``;
        explicit ``source``/``target``/``count`` force a migration (the
        deterministic path the tests drive).  Returns the number of
        instances moved.
        """
        self._require_running()
        if self.backend != "async":
            raise RuntimeError("work stealing requires the async backend")
        if self.shards < 2:
            return 0
        lock = self._route_lock
        async with lock:
            if source is None or target is None:
                depths = [actor.inbox.qsize() for actor in self._actors]
                source = int(np.argmax(depths))
                target = int(np.argmin(depths))
                if (
                    source == target
                    or depths[source] - depths[target]
                    < self.rebalance_threshold
                ):
                    return 0
            hot = self._actors[source]
            cold = self._actors[target]
            # no new events can route while we hold the lock; wait until
            # the hot shard has served everything already queued so the
            # exported state is complete
            await hot.inbox.join()
            keys = hot.instance_keys
            if count is None:
                count = max(1, len(keys) // 4)
            moved = keys[-count:] if count else []
            for key in moved:
                cold.import_instance(key, hot.export_instance(key))
                self._route_override[key] = target
            self.migrations += len(moved)
            return len(moved)

    async def _rebalance_loop(self) -> None:
        while True:
            await asyncio.sleep(self.rebalance_interval)
            await self.rebalance()

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    def _require_running(self) -> asyncio.Lock:
        if not self._running:
            raise RuntimeError("supervisor is not running")
        return self._route_lock

    async def _put(
        self, shard_id: int, message: Union[InjectEvent, InjectBatch]
    ) -> None:
        if self.backend == "async":
            await self._actors[shard_id].put(message)
        else:
            await self._handles[shard_id].send(message)


def _merge_results(
    parts: Sequence[Tuple[List[int], FleetResult]], elapsed: float
) -> FleetResult:
    """Merge per-shard results into one fleet result ordered by key."""
    aggregate = ExecutionStats()
    keyed: List[Tuple[int, int, int, int]] = []
    timed = any(result.instance_ticks is not None for _, result in parts)
    for keys, result in parts:
        aggregate.merge(result.stats)
        ticks = (
            result.instance_ticks.tolist()
            if result.instance_ticks is not None
            else [0] * len(keys)
        )
        keyed.extend(
            zip(
                keys,
                result.instance_cycles.tolist(),
                result.instance_events.tolist(),
                ticks,
            )
        )
    keyed.sort()
    cycles = np.array([c for _, c, _, _ in keyed], dtype=np.int64)
    events = np.array([e for _, _, e, _ in keyed], dtype=np.int64)
    return FleetResult(
        stats=aggregate,
        instance_cycles=cycles,
        instance_events=events,
        engine=ENGINE_COMPILED,
        elapsed_seconds=elapsed,
        instance_ticks=(
            np.array([t for _, _, _, t in keyed], dtype=np.int64)
            if timed
            else None
        ),
    )


# ----------------------------------------------------------------------
# Process backend
# ----------------------------------------------------------------------
class _ProcessShardHandle:
    """Parent-side endpoint of one worker-process shard.

    Requests travel the pipe as wire-codec lines; replies resolve a
    FIFO of pending futures (the pipe preserves order, so no request
    ids are needed).  Blocking pipe operations run in worker threads
    (``asyncio.to_thread``) so the event loop never stalls on a full
    pipe buffer.
    """

    def __init__(
        self,
        shard_id: int,
        net_json: str,
        modules: Dict[str, str],
        cost: CostModel,
        max_firings: int,
        on_budget: str,
        timing: Optional[TimingModel] = None,
    ) -> None:
        self.shard_id = shard_id
        self._spec = (net_json, modules, cost, max_firings, on_budget, timing)
        self._process: Optional["object"] = None
        self._conn = None
        self._pending: Deque["asyncio.Future"] = deque()
        self._send_lock: Optional[asyncio.Lock] = None
        self._reader: Optional["asyncio.Task"] = None

    async def start(self) -> None:
        import multiprocessing

        parent, child = multiprocessing.Pipe()
        process = multiprocessing.Process(
            target=_shard_worker,
            args=(child, self.shard_id) + self._spec,
            daemon=True,
        )
        process.start()
        child.close()
        self._process = process
        self._conn = parent
        self._send_lock = asyncio.Lock()
        self._reader = asyncio.create_task(self._read_loop())

    async def _read_loop(self) -> None:
        while True:
            try:
                reply = await asyncio.to_thread(self._conn.recv)
            except (EOFError, OSError):
                break
            if isinstance(reply, str):
                reply = decode_message(reply)
            if self._pending:
                future = self._pending.popleft()
                if not future.done():
                    future.set_result(reply)
            if isinstance(reply, tuple):  # the final (keys, FleetResult)
                break

    async def _request(self, message) -> "asyncio.Future":
        future: "asyncio.Future" = asyncio.get_running_loop().create_future()
        async with self._send_lock:
            self._pending.append(future)
            await asyncio.to_thread(self._conn.send, encode_message(message))
        return future

    async def send(self, message: Union[InjectEvent, InjectBatch]) -> None:
        async with self._send_lock:
            await asyncio.to_thread(self._conn.send, encode_message(message))

    async def snapshot(self) -> ShardStats:
        return await (await self._request(SnapshotRequest()))

    async def reload(self, reset_stats: bool = True) -> None:
        await (await self._request(Reload(reset_stats=reset_stats)))

    async def shutdown(self, drain: bool) -> Tuple[List[int], FleetResult]:
        return await (await self._request(Shutdown(drain=drain)))

    async def join(self) -> None:
        if self._reader is not None:
            await self._reader
        if self._process is not None:
            await asyncio.to_thread(self._process.join, 10)
        if self._conn is not None:
            self._conn.close()


def _shard_worker(
    conn,
    shard_id: int,
    net_json: str,
    modules: Dict[str, str],
    cost: CostModel,
    max_firings: int,
    on_budget: str,
    timing: Optional[TimingModel],
) -> None:  # pragma: no cover - runs inside the worker process
    """Synchronous shard loop: drain the pipe into a ShardCore."""
    from ..petrinet.serialization import net_from_json

    engine = FleetEngine(
        net_from_json(net_json),
        ModuleAssignment(modules=modules),
        cost_model=cost,
        max_firings_per_event=max_firings,
        on_budget=on_budget,
        timing=timing,
    )
    core = ShardCore(shard_id, engine)
    while True:
        try:
            messages = [decode_message(conn.recv())]
        except EOFError:
            break
        while conn.poll():
            messages.append(decode_message(conn.recv()))
        injects: List[InjectEvent] = []
        done = False
        for message in messages:
            if isinstance(message, InjectEvent):
                injects.append(message)
            elif isinstance(message, InjectBatch):
                injects.extend(message.events)
            elif isinstance(message, SnapshotRequest):
                core.serve_injects(injects)
                injects = []
                conn.send(encode_message(core.stats(queue_depth=0)))
            elif isinstance(message, Reload):
                core.serve_injects(injects)
                injects = []
                core.reload(reset_stats=message.reset_stats)
                conn.send(encode_message(Ack()))
            elif isinstance(message, Shutdown):
                if message.drain:
                    core.serve_injects(injects)
                injects = []
                conn.send(core.result())
                done = True
                break
        if done:
            break
        core.serve_injects(injects)
    conn.close()
