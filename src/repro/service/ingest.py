"""Event ingest: the LDJSON socket server and the service clients.

:class:`IngestServer` exposes a running
:class:`~repro.service.supervisor.FleetSupervisor` over TCP, one wire
message (:mod:`repro.service.messages`) per line in both directions.
Injects propagate the shard actors' backpressure naturally: the
connection handler ``await``s the supervisor, so while shard inboxes
are full the handler stops reading its socket, the kernel buffer and
TCP window fill, and the *client* slows down — overload degrades to
latency, never to unbounded server memory.  Malformed lines are
answered with a ``not-ok`` :class:`~repro.service.messages.Ack`
carrying the parse error; the connection stays up.

Two client flavours share one API surface (inject / snapshot / reload
/ shutdown): :class:`ServiceClient` speaks the codec over a socket
(what external producers use, and what the socket tests drive), and
:class:`LocalClient` calls the supervisor directly in-process (what the
CLI and most tests use — same types, no serialization).
"""

from __future__ import annotations

import asyncio
import dataclasses
from typing import List, Mapping, Optional, Sequence, Tuple

from .messages import (
    Ack,
    InjectBatch,
    InjectBatchPacked,
    InjectEvent,
    ProtocolError,
    Reload,
    Shutdown,
    SnapshotReply,
    SnapshotRequest,
    decode_message,
    encode_message,
)
from .supervisor import FleetSupervisor

#: Per-line stream buffer limit, both directions.  asyncio's 64 KiB
#: default truncates a large :class:`InjectBatch` (one JSON line); a
#: line beyond even this limit closes the connection rather than
#: buffering unboundedly.
STREAM_LIMIT = 16 * 1024 * 1024

#: Injects per wire line: :meth:`ServiceClient.inject_batch` splits
#: larger batches so no single line approaches :data:`STREAM_LIMIT`.
BATCH_CHUNK = 4096


class IngestServer:
    """Line-delimited-JSON TCP front end for a fleet supervisor."""

    def __init__(
        self,
        supervisor: FleetSupervisor,
        host: str = "127.0.0.1",
        port: int = 0,
    ) -> None:
        self.supervisor = supervisor
        self.host = host
        self.port = port
        self._server: Optional[asyncio.AbstractServer] = None
        #: Set when a client sends :class:`Shutdown`; the owner of the
        #: supervisor awaits this (or a duration timeout) and then calls
        #: ``supervisor.stop()`` — the server never stops the fleet itself.
        self.shutdown_requested = asyncio.Event()
        self.shutdown_drain = True

    async def start(self) -> Tuple[str, int]:
        """Bind and start serving; returns the bound (host, port)."""
        self._server = await asyncio.start_server(
            self._handle, self.host, self.port, limit=STREAM_LIMIT
        )
        sockname = self._server.sockets[0].getsockname()
        self.host, self.port = sockname[0], sockname[1]
        return self.host, self.port

    async def stop(self) -> None:
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None

    async def _handle(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        try:
            while True:
                line = await reader.readline()
                if not line:
                    break
                stripped = line.strip()
                if not stripped:
                    continue
                try:
                    message = decode_message(stripped)
                except ProtocolError as error:
                    await self._reply(writer, Ack(ok=False, error=str(error)))
                    continue
                if isinstance(message, (InjectEvent, InjectBatch)):
                    # awaiting under backpressure pauses this reader —
                    # that is the flow control
                    await self.supervisor.inject(message)
                elif isinstance(message, SnapshotRequest):
                    reply = await self.supervisor.snapshot()
                    await self._reply(
                        writer,
                        dataclasses.replace(
                            reply, request_id=message.request_id
                        ),
                    )
                elif isinstance(message, Reload):
                    await self.supervisor.reload(
                        reset_stats=message.reset_stats
                    )
                    await self._reply(writer, Ack())
                elif isinstance(message, Shutdown):
                    self.shutdown_drain = message.drain
                    self.shutdown_requested.set()
                    await self._reply(
                        writer, Ack(request_id=message.request_id)
                    )
                else:
                    await self._reply(
                        writer,
                        Ack(
                            ok=False,
                            error=f"unexpected message type {message.TYPE!r}",
                        ),
                    )
        except (ConnectionResetError, asyncio.IncompleteReadError):
            pass
        except ValueError:
            # a single line exceeded STREAM_LIMIT: the stream cannot be
            # re-synchronized mid-line, so drop this connection cleanly
            pass
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionResetError, OSError):
                pass

    @staticmethod
    async def _reply(writer: asyncio.StreamWriter, message) -> None:
        writer.write(encode_message(message).encode() + b"\n")
        await writer.drain()


class ServiceClient:
    """Socket client speaking the wire codec (one request at a time)."""

    def __init__(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        self._reader = reader
        self._writer = writer
        self._lock = asyncio.Lock()
        self._next_id = 1

    @classmethod
    async def connect(cls, host: str, port: int) -> "ServiceClient":
        reader, writer = await asyncio.open_connection(
            host, port, limit=STREAM_LIMIT
        )
        return cls(reader, writer)

    async def close(self) -> None:
        self._writer.close()
        try:
            await self._writer.wait_closed()
        except (ConnectionResetError, OSError):
            pass

    async def _send(self, message) -> None:
        self._writer.write(encode_message(message).encode() + b"\n")
        await self._writer.drain()

    async def _recv(self):
        line = await self._reader.readline()
        if not line:
            raise ConnectionError("service closed the connection")
        return decode_message(line.strip())

    async def inject(
        self,
        instance: int,
        source: str,
        time: float = 0.0,
        choices: Optional[Mapping[str, str]] = None,
    ) -> None:
        await self._send(
            InjectEvent(
                instance=instance,
                source=source,
                time=time,
                choices=dict(choices or {}),
            )
        )

    async def inject_batch(self, events: Sequence[InjectEvent]) -> None:
        for lo in range(0, len(events), BATCH_CHUNK):
            await self._send(
                InjectBatch(events=tuple(events[lo : lo + BATCH_CHUNK]))
            )

    async def snapshot(self) -> SnapshotReply:
        async with self._lock:
            request_id = self._next_id
            self._next_id += 1
            await self._send(SnapshotRequest(request_id=request_id))
            reply = await self._recv()
        if not isinstance(reply, SnapshotReply):
            raise ProtocolError(
                f"expected snapshot_reply, got {reply.TYPE!r}"
            )
        return reply

    async def reload(self, reset_stats: bool = True) -> Ack:
        async with self._lock:
            await self._send(Reload(reset_stats=reset_stats))
            reply = await self._recv()
        return reply

    async def shutdown(self, drain: bool = True) -> Ack:
        async with self._lock:
            request_id = self._next_id
            self._next_id += 1
            await self._send(Shutdown(drain=drain, request_id=request_id))
            reply = await self._recv()
        return reply


class LocalClient:
    """In-process client: the same surface, straight to the supervisor."""

    def __init__(self, supervisor: FleetSupervisor) -> None:
        self.supervisor = supervisor

    async def inject(
        self,
        instance: int,
        source: str,
        time: float = 0.0,
        choices: Optional[Mapping[str, str]] = None,
    ) -> None:
        await self.supervisor.inject(
            InjectEvent(
                instance=instance,
                source=source,
                time=time,
                choices=dict(choices or {}),
            )
        )

    async def inject_batch(self, events: Sequence[InjectEvent]) -> None:
        await self.supervisor.inject(InjectBatch(events=tuple(events)))

    def pack(self, events: Sequence[InjectEvent]) -> InjectBatchPacked:
        """Intern events into a packed batch once, reusable across injects.

        The zero-copy fast lane: callers that replay the same workload
        (benchmarks, load generators) pack outside their timed loop and
        hand the id columns straight to :meth:`inject_packed`.
        """
        return self.supervisor.pack(events)

    async def inject_packed(self, batch: InjectBatchPacked) -> None:
        """Inject a pre-packed batch (see :meth:`pack`)."""
        await self.supervisor.inject(batch)

    async def snapshot(self) -> SnapshotReply:
        return await self.supervisor.snapshot()

    async def reload(self, reset_stats: bool = True) -> None:
        await self.supervisor.reload(reset_stats=reset_stats)


def events_to_injects(
    streams: Sequence[Sequence["object"]],
) -> List[InjectEvent]:
    """Flatten per-instance Event streams into a time-ordered inject list.

    Instance ``i``'s stream becomes injects with ``instance=i``; the
    global order interleaves instances by event time (stable, so each
    instance's own order is preserved) — the shape a real multiplexed
    ingest feed would have.
    """
    flat: List[Tuple[float, int, InjectEvent]] = []
    for instance, stream in enumerate(streams):
        for event in stream:
            flat.append(
                (
                    event.time,
                    instance,
                    InjectEvent(
                        instance=instance,
                        source=event.source,
                        time=event.time,
                        choices=dict(event.choices),
                    ),
                )
            )
    flat.sort(key=lambda item: item[0])
    return [inject for _, _, inject in flat]
