"""Batched multi-instance execution: serving fleets of net instances.

One reactive simulation answers "what does *one* deployed system do
under this event stream?".  The production question is different: a
server farm runs *thousands* of independent instances of the same
specification, each against its own event stream.  Stepping them one by
one through :class:`~repro.runtime.reactive.ReactiveNetSimulator` pays
the full Python event loop per instance; this module steps all of them
*together* on the compiled engine, split into two layers:

* :class:`FleetEngine` is the pure stepping **kernel**: it owns the
  ``(N, P)`` int64 marking matrix (one row per instance, one column per
  compiled place id), the batched enabledness/dispatch machinery and
  the per-instance accounting arrays.  It is driven round by round
  through :meth:`FleetEngine.dispatch` — one event per listed instance
  — so the same kernel serves both a one-shot batch run over complete
  streams and the always-on shard actors of :mod:`repro.service`,
  which feed it incrementally from their inboxes.  Instances can be
  added, exported and imported at runtime (the supervisor's
  work-stealing rebalancer migrates live instances between shards).

* :class:`FleetSimulator` is the stream **orchestration**: it sorts the
  per-instance streams, feeds them to one kernel round by round
  (``run``), loops the string-keyed reactive simulator per instance
  (``engine="legacy"``, the benchmark baseline) and shards the fleet
  over a ``multiprocessing`` pool (``run(streams, workers=N)``,
  contiguous instance chunks merged in order, byte-identical results).

The kernel accelerates the event loop with **memoized cascades**: the
run-to-quiescence processing of an event is fully deterministic given
the instance's current marking, the event's source transition and its
choice-resolution signature (the first enabled candidate in transition
id order fires, exactly as the legacy simulator's insertion-order
scan).  Marking states and signatures are interned to small integer
ids, and each distinct ``(state, source, signature)`` key is simulated
once — its firing counts, cycle charges, activations, queue crossings
and end state become a *cascade* row.  Serving an event is then one
table gather plus vectorized delta application, which is what lets a
single core sustain hundreds of thousands of events per second
(``benchmarks/bench_serve.py`` holds the contract).  Nets whose state
or cascade population keeps growing flush the tables and eventually
fall back to the direct batched loop, so memory stays bounded and the
results stay *identical*: memoized, direct and legacy execution are
pinned equal by `tests/test_runtime_compiled_differential.py` and
`tests/test_service_differential.py`.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple, Union

import numpy as np

from ..petrinet import PetriNet
from ..petrinet.compiled import (
    ENGINE_COMPILED,
    ENGINE_LEGACY,
    CompiledNet,
    compile_net,
    validate_engine,
)
from ..petrinet.exceptions import NotEnabledError
from .cost import CostModel
from .events import (
    ChoiceSampler,
    Event,
    arrival_events,
    merge_streams,
    validate_arrival,
    with_choices,
)
from .reactive import (
    QUIESCENCE_MESSAGE,
    ModuleAssignment,
    ReactiveNetSimulator,
    validate_budget_policy,
)
from .rtos import ExecutionStats
from .stochastic import StochasticChoicePolicy, TimingModel


@dataclass
class FleetResult:
    """Outcome of one fleet run.

    Attributes
    ----------
    stats:
        Aggregate :class:`ExecutionStats` over every instance (cycles,
        activations per task, firings per transition, events, budget
        stops).
    instance_cycles / instance_events:
        Per-instance totals, index-aligned with the input streams.
    engine:
        The engine that produced the result.
    elapsed_seconds:
        Wall-clock of the run (the denominator of :attr:`throughput_eps`).
    instance_ticks:
        Per-instance timed-delay totals when the run used a
        :class:`~repro.runtime.stochastic.TimingModel`, ``None`` for
        untimed runs.
    """

    stats: ExecutionStats
    instance_cycles: np.ndarray
    instance_events: np.ndarray
    engine: str
    elapsed_seconds: float = 0.0
    instance_ticks: Optional[np.ndarray] = None

    @property
    def instances(self) -> int:
        return int(len(self.instance_cycles))

    @property
    def throughput_eps(self) -> float:
        """Events served per wall-clock second."""
        if self.elapsed_seconds <= 0:
            return 0.0
        return self.stats.events_processed / self.elapsed_seconds

    def percentile(self, q: float) -> float:
        """Percentile of the per-instance total-cycle distribution."""
        if len(self.instance_cycles) == 0:
            return 0.0
        return float(np.percentile(self.instance_cycles, q))

    def percentiles(
        self, qs: Sequence[float] = (50, 90, 95, 99)
    ) -> Dict[str, float]:
        """The standard latency-style summary of the cycle distribution."""
        return {f"p{q:g}": self.percentile(q) for q in qs}

    def describe(self) -> str:
        lines = [
            f"fleet of {self.instances} instance(s) ({self.engine} engine)",
            self.stats.describe(),
            "per-instance cycles: "
            + ", ".join(
                f"{name}={value:.0f}" for name, value in self.percentiles().items()
            ),
        ]
        if self.instance_ticks is not None and len(self.instance_ticks):
            lines.append(
                "per-instance delay ticks: "
                + ", ".join(
                    f"p{q:g}={float(np.percentile(self.instance_ticks, q)):.0f}"
                    for q in (50, 90, 95, 99)
                )
            )
        if self.elapsed_seconds > 0:
            lines.append(
                f"throughput: {self.throughput_eps:.0f} events/s "
                f"({self.elapsed_seconds:.3f}s wall)"
            )
        return "\n".join(lines)


#: Flush the cascade memo when the interned state or cascade population
#: exceeds this; after :data:`MEMO_MAX_FLUSHES` flushes the kernel falls
#: back to the direct batched loop for good (results are identical, the
#: net is just not memoization-friendly).
MEMO_STATE_LIMIT = 65_536
MEMO_MAX_FLUSHES = 2


class SignatureTable:
    """Interned choice-resolution signatures over one compiled net.

    Signatures depend only on the net, so one table can back any number
    of :class:`FleetEngine` instances of the same ``CompiledNet`` — the
    sharded service interns each event *once* at the ingest boundary
    and every shard kernel consumes the resulting integer ids directly.

    Two-level scheme: the **raw** index caches insertion-order
    ``choices.items()`` tuples so the steady-state lookup skips the
    per-event sort; the **canonical** index keys sorted tuples so
    equivalent resolutions share one id.  Ids are assigned densely in
    canonical-creation order, which makes the table replicable: feeding
    :meth:`definitions` to another table's :meth:`intern` in order
    yields the same ids (how the process-backed shards stay in sync
    with their supervisor across pipes).
    """

    def __init__(self, cnet: CompiledNet) -> None:
        self.cnet = cnet
        n_t = len(cnet.transitions)
        # successor transition ids per choice place id, for the per-event
        # "allowed" masks
        successors: Dict[int, List[int]] = {}
        for t_id, pairs in enumerate(cnet.pre_lists):
            for p_id, _w in pairs:
                successors.setdefault(p_id, []).append(t_id)
        self._choice_successors: Dict[int, np.ndarray] = {
            p_id: np.array(t_ids, dtype=np.int64)
            for p_id, t_ids in successors.items()
            if len(t_ids) > 1
        }
        # signature id 0 is the empty resolution (allowed = everything)
        self._index: Dict[Tuple[Tuple[str, str], ...], int] = {(): 0}
        self._raw_index: Dict[Tuple[Tuple[str, str], ...], int] = {(): 0}
        self._signatures: List[Tuple[Tuple[str, str], ...]] = [()]
        self.allowed = np.ones((4, n_t), dtype=bool)
        self.count = 1

    def intern_raw(self, raw: Tuple[Tuple[str, str], ...]) -> int:
        """Intern an insertion-order ``choices.items()`` tuple."""
        sig_id = self._raw_index.get(raw)
        if sig_id is None:
            sig_id = self.intern(tuple(sorted(raw)))
            self._raw_index[raw] = sig_id
        return sig_id

    def intern(self, signature: Tuple[Tuple[str, str], ...]) -> int:
        """Intern one canonical (sorted) signature, returning its id.

        The allowed row deselects every transition whose preset contains
        a choice place that resolved to a *different* successor — the
        same filter :class:`ReactiveNetSimulator` applies per transition.
        """
        sig_id = self._index.get(signature)
        if sig_id is not None:
            return sig_id
        transition_index = self.cnet.transition_index
        place_index = self.cnet.place_index
        allowed = np.ones(len(self.cnet.transitions), dtype=bool)
        for place, chosen in signature:
            p_id = place_index.get(place)
            if p_id is None:
                continue
            candidates = self._choice_successors.get(p_id)
            if candidates is None:
                continue
            chosen_id = transition_index.get(chosen, -1)
            allowed[candidates[candidates != chosen_id]] = False
        sig_id = self.count
        if sig_id >= len(self.allowed):
            grown = np.ones(
                (2 * len(self.allowed), len(self.cnet.transitions)), dtype=bool
            )
            grown[: len(self.allowed)] = self.allowed
            self.allowed = grown
        self.allowed[sig_id] = allowed
        self._index[signature] = sig_id
        self._signatures.append(signature)
        self.count += 1
        return sig_id

    def definitions(
        self, start: int = 0, end: Optional[int] = None
    ) -> List[Tuple[Tuple[str, str], ...]]:
        """Canonical signatures ``start..end`` in id order (replication)."""
        return self._signatures[start : self.count if end is None else end]


class FleetEngine:
    """The pure fleet stepping kernel: N instances of one compiled net.

    The engine owns *state* (the marking matrix, per-instance cycle and
    event counters, aggregate accounting) and *mechanism* (batched
    dispatch with memoized cascades); it knows nothing about streams,
    sockets or actors.  Drive it with :meth:`dispatch` — one event per
    listed instance row per call — and read the outcome with
    :meth:`result` or :meth:`stats_snapshot` at any point.

    Parameters
    ----------
    net:
        The specification (:class:`PetriNet` or pre-compiled
        :class:`CompiledNet`).
    assignment:
        Task of every transition (must cover *all* transitions — the
        kernel precomputes the module table up front).
    cost_model / max_firings_per_event / on_budget:
        As for :class:`~repro.runtime.reactive.ReactiveNetSimulator`.
    instances:
        Initial fleet size; :meth:`add_instances` grows it at runtime.
    memo:
        ``True`` (default) enables the cascade memo; ``False`` forces
        the direct batched loop (the cross-check path).
    signatures:
        Optional shared :class:`SignatureTable`.  The sharded service
        passes one table to every shard engine so events interned once
        at the ingest boundary are directly dispatchable on any shard;
        by default each engine owns a private table.
    timing:
        Optional :class:`~repro.runtime.stochastic.TimingModel`.  Timed
        runs track an extra per-instance integer tick total; the memo
        path replays it as one ``fired @ ticks`` product per cascade and
        the direct path accumulates it per firing — integer arithmetic
        keeps the two byte-identical.
    """

    def __init__(
        self,
        net: Union[PetriNet, CompiledNet],
        assignment: ModuleAssignment,
        cost_model: Optional[CostModel] = None,
        max_firings_per_event: int = 100_000,
        on_budget: str = "error",
        instances: int = 0,
        memo: bool = True,
        timing: Optional[TimingModel] = None,
        signatures: Optional[SignatureTable] = None,
    ) -> None:
        self.on_budget = validate_budget_policy(on_budget)
        self.assignment = assignment
        self.cost = cost_model or CostModel()
        self.max_firings_per_event = max_firings_per_event
        self.timing = timing
        self.cnet: CompiledNet = (
            net if isinstance(net, CompiledNet) else compile_net(net)
        )
        if signatures is not None and signatures.cnet is not self.cnet:
            raise ValueError(
                "shared SignatureTable must be built over the engine's "
                "own CompiledNet"
            )
        self.signatures = signatures or SignatureTable(self.cnet)
        self._memo_enabled = memo
        self._prepare_tables()
        self._init_memo_tables()
        self.reset(instances)

    # ------------------------------------------------------------------
    # Static tables (per net + assignment + cost model)
    # ------------------------------------------------------------------
    def _prepare_tables(self) -> None:
        cnet = self.cnet
        n_t = len(cnet.transitions)
        # module table: id per transition, names indexed by module id
        module_names: List[str] = []
        module_index: Dict[str, int] = {}
        module_of = np.empty(n_t, dtype=np.int64)
        for t_id, name in enumerate(cnet.transitions):
            module = self.assignment.module_of(name)
            if module not in module_index:
                module_index[module] = len(module_names)
                module_names.append(module)
            module_of[t_id] = module_index[module]
        self._module_names = module_names
        self._module_of = module_of
        transition_cycles = self.cost.transition_cycles
        test_cycles = self.cost.test_cycles
        self._fire_cycles = np.array(
            [cost * transition_cycles + test_cycles for cost in cnet.costs],
            dtype=np.int64,
        )
        self._nonsource = np.array(
            [bool(pairs) for pairs in cnet.pre_lists], dtype=bool
        )
        # timed runs: integer tick delay per transition id (the all-zero
        # vector keeps the untimed hot path branch-light)
        self._timed = self.timing is not None
        self._tick_vector = (
            self.timing.tick_vector(cnet)
            if self.timing is not None
            else np.zeros(n_t, dtype=np.int64)
        )

    # ------------------------------------------------------------------
    # Memo tables: marking states and cascades (signatures live in the
    # possibly-shared SignatureTable and survive memo flushes)
    # ------------------------------------------------------------------
    def _init_memo_tables(self) -> None:
        self._memo_flushes = 0
        self._clear_cascades()

    def _clear_cascades(self) -> None:
        n_t = len(self.cnet.transitions)
        n_m = len(self._module_names)
        n_p = len(self.cnet.places)
        self._state_index: Dict[bytes, int] = {}
        self._state_mark = np.empty((8, n_p), dtype=np.int64)
        self._state_count = 0
        self._cascade_index: Dict[Tuple[int, int, int], int] = {}
        cap = 8
        self._c_count = 0
        self._c_end = np.empty(cap, dtype=np.int64)
        self._c_cycles = np.empty(cap, dtype=np.int64)
        self._c_ticks = np.empty(cap, dtype=np.int64)
        self._c_body = np.empty(cap, dtype=np.int64)
        self._c_queue = np.empty(cap, dtype=np.int64)
        self._c_act_total = np.empty(cap, dtype=np.int64)
        self._c_stopped = np.empty(cap, dtype=bool)
        self._c_bad = np.empty(cap, dtype=bool)  # source not enabled
        self._c_fired = np.empty((cap, n_t), dtype=np.int64)
        self._c_act = np.empty((cap, n_m), dtype=np.int64)

    def _intern_state(self, marking: np.ndarray) -> int:
        key = marking.tobytes()
        state_id = self._state_index.get(key)
        if state_id is None:
            state_id = self._state_count
            if state_id >= len(self._state_mark):
                grown = np.empty(
                    (2 * len(self._state_mark), self._state_mark.shape[1]),
                    dtype=np.int64,
                )
                grown[: len(self._state_mark)] = self._state_mark
                self._state_mark = grown
            self._state_mark[state_id] = marking
            self._state_index[key] = state_id
            self._state_count += 1
        return state_id

    # ------------------------------------------------------------------
    # Per-run state
    # ------------------------------------------------------------------
    def reset(self, instances: int = 0) -> None:
        """Reinitialize the fleet to ``instances`` fresh instances.

        Interned signatures, states and cascades are *kept* — they
        depend only on the net, assignment, cost model and budget, so a
        warm kernel serves repeated runs without re-simulating.
        """
        n_p = len(self.cnet.places)
        capacity = max(instances, 8)
        self._n = instances
        self._initial = np.array(self.cnet.initial, dtype=np.int64)
        self._markings = np.empty((capacity, n_p), dtype=np.int64)
        self._markings[:instances] = self._initial
        self._cycles = np.zeros(capacity, dtype=np.int64)
        self._ticks = np.zeros(capacity, dtype=np.int64)
        self._events = np.zeros(capacity, dtype=np.int64)
        self._fire_counts = np.zeros(len(self.cnet.transitions), dtype=np.int64)
        self._activation_counts = np.zeros(len(self._module_names), dtype=np.int64)
        self._activation_total = 0
        self._body_total = 0
        self._queue_total = 0
        self._budget_stops = 0
        self._memo_active = self._memo_enabled
        self._state_of_row = np.zeros(capacity, dtype=np.int64)
        if self._memo_active:
            self._state_of_row[:instances] = self._intern_state(self._initial)

    def reset_state(self, reset_stats: bool = True) -> None:
        """Reset every instance to the initial marking (service reload).

        With ``reset_stats`` (default) the accounting starts over as
        well; otherwise cycle/event counters keep accumulating across
        the reload.
        """
        self._markings[: self._n] = self._initial
        if self._memo_active:
            self._state_of_row[: self._n] = self._intern_state(self._initial)
        if reset_stats:
            self._cycles[: self._n] = 0
            self._ticks[: self._n] = 0
            self._events[: self._n] = 0
            self._fire_counts[:] = 0
            self._activation_counts[:] = 0
            self._activation_total = 0
            self._body_total = 0
            self._queue_total = 0
            self._budget_stops = 0

    @property
    def instances(self) -> int:
        return self._n

    @property
    def events_total(self) -> int:
        return int(self._events[: self._n].sum())

    def _grow(self, needed: int) -> None:
        capacity = len(self._cycles)
        if needed <= capacity:
            return
        new_cap = max(needed, 2 * capacity)
        for name in ("_cycles", "_ticks", "_events", "_state_of_row"):
            old = getattr(self, name)
            grown = np.zeros(new_cap, dtype=old.dtype)
            grown[: self._n] = old[: self._n]
            setattr(self, name, grown)
        old_m = self._markings
        self._markings = np.empty((new_cap, old_m.shape[1]), dtype=np.int64)
        self._markings[: self._n] = old_m[: self._n]

    def add_instances(self, count: int) -> np.ndarray:
        """Register ``count`` fresh instances; returns their row indices."""
        if count <= 0:
            return np.empty(0, dtype=np.int64)
        self._grow(self._n + count)
        rows = np.arange(self._n, self._n + count, dtype=np.int64)
        self._markings[rows] = self._initial
        self._cycles[rows] = 0
        self._ticks[rows] = 0
        self._events[rows] = 0
        if self._memo_active:
            self._state_of_row[rows] = self._intern_state(self._initial)
        self._n += count
        return rows

    def export_instance(self, row: int) -> Tuple[List[int], int, int, int]:
        """Snapshot one instance's migratable state
        (marking, cycles, events, delay ticks).

        Aggregate accounting (firings, activations, cycle totals) stays
        with the exporting kernel — the supervisor sums it across shards
        anyway, so migration never loses or double-counts work.
        """
        if self._memo_active:
            marking = self._state_mark[self._state_of_row[row]]
        else:
            marking = self._markings[row]
        return (
            [int(v) for v in marking],
            int(self._cycles[row]),
            int(self._events[row]),
            int(self._ticks[row]),
        )

    def remove_instance(self, row: int) -> int:
        """Drop one instance (after :meth:`export_instance` for migration).

        The last row is swapped into the vacated slot; returns the old
        index of that moved row so callers can fix their key maps.
        Aggregate accounting keeps the removed instance's *past*
        contribution — its future work accrues wherever it is imported,
        so fleet-wide sums still count every charge exactly once.
        """
        last = self._n - 1
        if row != last:
            self._markings[row] = self._markings[last]
            self._cycles[row] = self._cycles[last]
            self._ticks[row] = self._ticks[last]
            self._events[row] = self._events[last]
            self._state_of_row[row] = self._state_of_row[last]
        self._n = last
        return last

    def import_instance(self, state: Sequence) -> int:
        """Restore a migrated instance; returns its new row index.

        Accepts both the current 4-tuple snapshot and the pre-timing
        3-tuple (``ticks`` defaults to 0), so mixed-version shards can
        still exchange instances mid-rollout.
        """
        marking, cycles, events = state[0], state[1], state[2]
        ticks = state[3] if len(state) > 3 else 0
        row = int(self.add_instances(1)[0])
        vector = np.array(list(marking), dtype=np.int64)
        self._markings[row] = vector
        self._cycles[row] = cycles
        self._ticks[row] = ticks
        self._events[row] = events
        if self._memo_active:
            self._state_of_row[row] = self._intern_state(vector)
        return row

    # ------------------------------------------------------------------
    # Dispatch: one event per listed instance row
    # ------------------------------------------------------------------
    def dispatch(self, rows: Sequence[int], events: Sequence[Event]) -> None:
        """Serve one *round*: ``events[j]`` is dispatched to instance
        ``rows[j]``.  Rows must be unique within a call (an instance's
        events are ordered; feed them in consecutive rounds)."""
        count = len(events)
        if count == 0:
            return
        row_arr = np.asarray(rows, dtype=np.int64)
        src_ids, sig_ids = self.prepare_events(events)
        self.dispatch_ids(row_arr, src_ids, sig_ids)

    def dispatch_ids(
        self, rows: np.ndarray, src_ids: np.ndarray, sig_ids: np.ndarray
    ) -> None:
        """:meth:`dispatch` for pre-interned events (see :meth:`prepare_events`)."""
        if len(src_ids) == 0:
            return
        if self._memo_active and (
            self._state_count > MEMO_STATE_LIMIT
            or self._c_count > MEMO_STATE_LIMIT
        ):
            self._flush_memo()
        if self._memo_active:
            self._dispatch_memo(rows, src_ids, sig_ids)
        else:
            self._dispatch_direct(rows, src_ids, sig_ids)

    def prepare_events(
        self, events: Sequence[Event]
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Intern a batch of events into (source id, signature id) columns.

        The hot loop of the serving path: one raw-cache hit per event in
        the steady state (the insertion-order ``items()`` tuple doubles
        as the lookup key, so repeated resolutions skip the sort)."""
        src_list: List[int] = []
        sig_list: List[int] = []
        add_src = src_list.append
        add_sig = sig_list.append
        lookup_src = self.cnet.transition_index.get
        table = self.signatures
        lookup_sig = table._raw_index.get
        intern_raw = table.intern_raw
        for event in events:
            t_id = lookup_src(event.source)
            if t_id is None:
                raise NotEnabledError(
                    f"unknown source transition {event.source!r}"
                )
            add_src(t_id)
            choices = event.choices
            if choices:
                raw = tuple(choices.items())
                sig_id = lookup_sig(raw)
                if sig_id is None:
                    sig_id = intern_raw(raw)
                add_sig(sig_id)
            else:
                add_sig(0)
        return (
            np.array(src_list, dtype=np.int64),
            np.array(sig_list, dtype=np.int64),
        )

    # -- memoized path -------------------------------------------------
    def _flush_memo(self) -> None:
        """Drop the state/cascade tables (population outgrew the limit).

        After :data:`MEMO_MAX_FLUSHES` flushes the kernel concludes the
        net is not memoization-friendly and switches to the direct loop.
        """
        self._materialize_markings()
        self._memo_flushes += 1
        if self._memo_flushes >= MEMO_MAX_FLUSHES:
            self._memo_active = False
            return
        self._clear_cascades()
        live = self._markings[: self._n]
        if self._n:
            unique, inverse = np.unique(live, axis=0, return_inverse=True)
            ids = np.array(
                [self._intern_state(unique[k]) for k in range(len(unique))],
                dtype=np.int64,
            )
            self._state_of_row[: self._n] = ids[inverse]

    def _materialize_markings(self) -> None:
        if self._memo_active and self._n:
            self._markings[: self._n] = self._state_mark[
                self._state_of_row[: self._n]
            ]

    def _dispatch_memo(
        self, rows: np.ndarray, src_ids: np.ndarray, sig_ids: np.ndarray
    ) -> None:
        state_ids = self._state_of_row[rows]
        # pack (state, src, sig) into one sortable key; spans are
        # per-round local, the cascade index itself is keyed by tuples
        span_sig = self.signatures.count
        span_src = len(self.cnet.transitions)
        packed = (state_ids * span_src + src_ids) * span_sig + sig_ids
        unique_keys, inverse = np.unique(packed, return_inverse=True)
        cascade_of_key = np.empty(len(unique_keys), dtype=np.int64)
        cascade_index = self._cascade_index
        for k, key in enumerate(unique_keys.tolist()):
            sig = key % span_sig
            rest = key // span_sig
            src = rest % span_src
            state = rest // span_src
            cascade_id = cascade_index.get((state, src, sig))
            if cascade_id is None:
                cascade_id = self._compute_cascade(int(state), int(src), int(sig))
            cascade_of_key[k] = cascade_id
        cascade_ids = cascade_of_key[inverse]

        bad = self._c_bad[cascade_ids]
        if bad.any():
            first = int(np.flatnonzero(bad)[0])
            name = self.cnet.transitions[int(src_ids[first])]
            raise NotEnabledError(
                f"transition {name!r} is not enabled in instance "
                f"{int(rows[first])}"
            )

        self._cycles[rows] += self._c_cycles[cascade_ids]
        if self._timed:
            self._ticks[rows] += self._c_ticks[cascade_ids]
        self._events[rows] += 1
        self._state_of_row[rows] = self._c_end[cascade_ids]
        unique_cascades, counts = np.unique(cascade_ids, return_counts=True)
        self._fire_counts += self._c_fired[unique_cascades].T @ counts
        self._activation_counts += self._c_act[unique_cascades].T @ counts
        self._body_total += int(self._c_body[unique_cascades] @ counts)
        self._queue_total += int(self._c_queue[unique_cascades] @ counts)
        self._activation_total += int(self._c_act_total[unique_cascades] @ counts)
        self._budget_stops += int(
            counts[self._c_stopped[unique_cascades]].sum()
        )

    def _compute_cascade(self, state: int, src: int, sig: int) -> int:
        """Simulate one (state, source, signature) event to quiescence.

        A literal single-row transcription of the direct batched loop —
        the cascade must charge cycle for cycle what the loop charges.
        """
        pre = self.cnet.pre
        incidence = self.cnet.incidence
        fire_cycles = self._fire_cycles
        module_of = self._module_of
        allowed = self.signatures.allowed[sig] & self._nonsource
        activation = self.cost.activation_cycles
        queue_round_trip = 2 * self.cost.queue_op_cycles
        budget = self.max_firings_per_event
        stop_on_budget = self.on_budget == "stop"

        n_t = len(self.cnet.transitions)
        fired = np.zeros(n_t, dtype=np.int64)
        activations = np.zeros(len(self._module_names), dtype=np.int64)
        marking = self._state_mark[state].copy()
        bad = not bool(np.all(marking >= pre[src]))
        cycles = body = queue = activation_total = 0
        stopped = False
        if not bad:
            cycles = int(activation + fire_cycles[src])
            activations[module_of[src]] += 1
            activation_total = activation
            marking += incidence[src]
            fired[src] += 1
            body = int(fire_cycles[src])
            current_module = int(module_of[src])
            firings = 1
            while True:
                candidates = np.all(marking >= pre, axis=1) & allowed
                if not candidates.any():
                    break
                chosen = int(candidates.argmax())
                module = int(module_of[chosen])
                if module != current_module:
                    cycles += queue_round_trip + activation
                    queue += queue_round_trip
                    activation_total += activation
                    activations[module] += 1
                    current_module = module
                marking += incidence[chosen]
                cycles += int(fire_cycles[chosen])
                fired[chosen] += 1
                body += int(fire_cycles[chosen])
                firings += 1
                if firings > budget:
                    if not stop_on_budget:
                        raise RuntimeError(QUIESCENCE_MESSAGE)
                    stopped = True
                    break

        cascade_id = self._c_count
        if cascade_id >= len(self._c_end):
            for name in (
                "_c_end",
                "_c_cycles",
                "_c_ticks",
                "_c_body",
                "_c_queue",
                "_c_act_total",
                "_c_stopped",
                "_c_bad",
            ):
                old = getattr(self, name)
                grown = np.empty(2 * len(old), dtype=old.dtype)
                grown[: len(old)] = old
                setattr(self, name, grown)
            for name in ("_c_fired", "_c_act"):
                old = getattr(self, name)
                grown = np.empty((2 * len(old), old.shape[1]), dtype=old.dtype)
                grown[: len(old)] = old
                setattr(self, name, grown)
        self._c_end[cascade_id] = state if bad else self._intern_state(marking)
        self._c_cycles[cascade_id] = cycles
        # integer matmul == the direct loop's per-firing accumulation,
        # so memoized replay stays byte-identical on the timed axis too
        self._c_ticks[cascade_id] = int(fired @ self._tick_vector)
        self._c_body[cascade_id] = body
        self._c_queue[cascade_id] = queue
        self._c_act_total[cascade_id] = activation_total
        self._c_stopped[cascade_id] = stopped
        self._c_bad[cascade_id] = bad
        self._c_fired[cascade_id] = fired
        self._c_act[cascade_id] = activations
        self._cascade_index[(state, src, sig)] = cascade_id
        self._c_count += 1
        return cascade_id

    # -- direct path (the original batched loop) -----------------------
    def _dispatch_direct(
        self, rows: np.ndarray, src_ids: np.ndarray, sig_ids: np.ndarray
    ) -> None:
        cnet = self.cnet
        count = len(rows)
        pre = cnet.pre
        incidence = cnet.incidence
        fire_cycles = self._fire_cycles
        module_of = self._module_of
        nonsource = self._nonsource
        markings = self._markings
        activation = self.cost.activation_cycles
        queue_round_trip = 2 * self.cost.queue_op_cycles
        budget = self.max_firings_per_event
        stop_on_budget = self.on_budget == "stop"

        allowed = self.signatures.allowed[sig_ids]

        # dispatch: one activation per event, then fire the source
        src_modules = module_of[src_ids]
        if not np.all(markings[rows] >= pre[src_ids]):
            bad = rows[~np.all(markings[rows] >= pre[src_ids], axis=1)][0]
            position = int(np.flatnonzero(rows == bad)[0])
            name = cnet.transitions[int(src_ids[position])]
            raise NotEnabledError(
                f"transition {name!r} is not enabled in instance {int(bad)}"
            )
        self._cycles[rows] += activation + fire_cycles[src_ids]
        if self._timed:
            self._ticks[rows] += self._tick_vector[src_ids]
        np.add.at(self._activation_counts, src_modules, 1)
        self._activation_total += activation * count
        markings[rows] += incidence[src_ids]
        np.add.at(self._fire_counts, src_ids, 1)
        self._body_total += int(fire_cycles[src_ids].sum())
        self._events[rows] += 1

        # run to quiescence, one batched firing per iteration
        current_module = src_modules.copy()
        firings = np.ones(count, dtype=np.int64)
        active = np.arange(count)
        while active.size:
            sub_rows = rows[active]
            enabled = np.all(
                markings[sub_rows][:, np.newaxis, :] >= pre[np.newaxis, :, :],
                axis=2,
            )
            candidates = enabled & allowed[active] & nonsource[np.newaxis, :]
            has_candidate = candidates.any(axis=1)
            active = active[has_candidate]
            if not active.size:
                break
            candidates = candidates[has_candidate]
            sub_rows = rows[active]
            # argmax of a boolean row = first True = lowest transition
            # id = the legacy "first candidate in insertion order"
            chosen = candidates.argmax(axis=1)
            modules = module_of[chosen]
            crossed = modules != current_module[active]
            if crossed.any():
                crossed_count = int(crossed.sum())
                self._cycles[sub_rows[crossed]] += queue_round_trip + activation
                self._queue_total += queue_round_trip * crossed_count
                self._activation_total += activation * crossed_count
                np.add.at(self._activation_counts, modules[crossed], 1)
            current_module[active] = modules
            markings[sub_rows] += incidence[chosen]
            self._cycles[sub_rows] += fire_cycles[chosen]
            if self._timed:
                self._ticks[sub_rows] += self._tick_vector[chosen]
            np.add.at(self._fire_counts, chosen, 1)
            self._body_total += int(fire_cycles[chosen].sum())
            firings[active] += 1
            over = firings[active] > budget
            if over.any():
                if not stop_on_budget:
                    raise RuntimeError(QUIESCENCE_MESSAGE)
                self._budget_stops += int(over.sum())
                active = active[~over]

    # ------------------------------------------------------------------
    # Results
    # ------------------------------------------------------------------
    def aggregate_stats(self) -> ExecutionStats:
        """The aggregate :class:`ExecutionStats` accumulated so far."""
        stats = ExecutionStats()
        stats.events_processed = int(self._events[: self._n].sum())
        stats.activation_cycles = self._activation_total
        stats.body_cycles = self._body_total
        stats.queue_cycles = self._queue_total
        stats.total_cycles = (
            self._activation_total + self._body_total + self._queue_total
        )
        stats.budget_stops = self._budget_stops
        if self._timed:
            # total delay is a pure function of the firing counts, so
            # the aggregate needs no separate accumulator
            stats.delay_ticks = int(self._fire_counts @ self._tick_vector)
        stats.activations = {
            self._module_names[m]: int(c)
            for m, c in enumerate(self._activation_counts)
            if c
        }
        stats.firings = {
            self.cnet.transitions[t]: int(c)
            for t, c in enumerate(self._fire_counts)
            if c
        }
        return stats

    def instance_cycles(self) -> np.ndarray:
        return self._cycles[: self._n].copy()

    def instance_events(self) -> np.ndarray:
        return self._events[: self._n].copy()

    def instance_ticks(self) -> Optional[np.ndarray]:
        """Per-instance delay totals (``None`` when untimed)."""
        if not self._timed:
            return None
        return self._ticks[: self._n].copy()

    def result(
        self, engine: str = ENGINE_COMPILED, elapsed_seconds: float = 0.0
    ) -> FleetResult:
        """Fold the accumulated accounting into a :class:`FleetResult`."""
        return FleetResult(
            stats=self.aggregate_stats(),
            instance_cycles=self.instance_cycles(),
            instance_events=self.instance_events(),
            engine=engine,
            elapsed_seconds=elapsed_seconds,
            instance_ticks=self.instance_ticks(),
        )


class FleetSimulator:
    """Steps N independent instances of one net as a single batch.

    A thin stream-orchestration layer over :class:`FleetEngine`: the
    same kernel that backs the always-on service
    (:mod:`repro.service`) is driven here with complete per-instance
    streams, round by round (round ``k`` dispatches the ``k``-th event
    of every instance at once).

    Parameters
    ----------
    net:
        The specification (:class:`PetriNet` or pre-compiled
        :class:`CompiledNet`).
    assignment:
        Task of every transition (must cover *all* transitions).
    cost_model / max_firings_per_event / on_budget:
        As for :class:`~repro.runtime.reactive.ReactiveNetSimulator`.
    engine:
        ``"compiled"`` (default) runs the vectorized kernel; ``"legacy"``
        loops a string-keyed reactive simulator over the instances (the
        benchmark baseline).
    """

    def __init__(
        self,
        net: Union[PetriNet, CompiledNet],
        assignment: ModuleAssignment,
        cost_model: Optional[CostModel] = None,
        max_firings_per_event: int = 100_000,
        engine: str = ENGINE_COMPILED,
        on_budget: str = "error",
        timing: Optional[TimingModel] = None,
    ) -> None:
        self.engine = validate_engine(engine)
        self.on_budget = validate_budget_policy(on_budget)
        self.assignment = assignment
        self.cost = cost_model or CostModel()
        self.max_firings_per_event = max_firings_per_event
        self.timing = timing
        compiled = net if isinstance(net, CompiledNet) else None
        self._net: Optional[PetriNet] = None if compiled is not None else net
        # the legacy engine never touches the kernel, so it skips both
        # the compilation and the table preparation entirely
        if self.engine == ENGINE_COMPILED:
            self.kernel: Optional[FleetEngine] = FleetEngine(
                compiled or compile_net(net),
                assignment,
                cost_model=self.cost,
                max_firings_per_event=max_firings_per_event,
                on_budget=self.on_budget,
                timing=timing,
            )
            self.cnet: Optional[CompiledNet] = self.kernel.cnet
        else:
            self.kernel = None
            self.cnet = compiled

    @property
    def net(self) -> PetriNet:
        """The named view of the specification (decompiled on demand)."""
        if self._net is None:
            self._net = self.cnet.decompile()
        return self._net

    # ------------------------------------------------------------------
    # Entry point
    # ------------------------------------------------------------------
    def run(
        self, streams: Sequence[Sequence[Event]], workers: int = 1
    ) -> FleetResult:
        """Execute one event stream per instance and return the fleet result.

        ``workers > 1`` shards the instances over a multiprocessing pool
        (identical results, merged in instance order).
        """
        started = time.perf_counter()
        if workers > 1 and len(streams) > 1:
            result = self._run_pool(streams, workers)
        elif self.engine == ENGINE_LEGACY:
            result = self._run_legacy(streams)
        else:
            result = self._run_batched(streams)
        result.elapsed_seconds = time.perf_counter() - started
        return result

    # ------------------------------------------------------------------
    # Legacy baseline: one reactive simulator, instance by instance
    # ------------------------------------------------------------------
    def _run_legacy(self, streams: Sequence[Sequence[Event]]) -> FleetResult:
        aggregate = ExecutionStats()
        cycles = np.zeros(len(streams), dtype=np.int64)
        ticks = np.zeros(len(streams), dtype=np.int64)
        events = np.zeros(len(streams), dtype=np.int64)
        simulator = ReactiveNetSimulator(
            self.net,
            self.assignment,
            self.cost,
            max_firings_per_event=self.max_firings_per_event,
            engine=ENGINE_LEGACY,
            on_budget=self.on_budget,
            timing=self.timing,
        )
        for i, stream in enumerate(streams):
            simulator.reset()
            stats = simulator.run(stream)
            cycles[i] = stats.total_cycles
            ticks[i] = stats.delay_ticks
            events[i] = stats.events_processed
            aggregate.merge(stats)
        return FleetResult(
            stats=aggregate,
            instance_cycles=cycles,
            instance_events=events,
            engine=self.engine,
            instance_ticks=ticks if self.timing is not None else None,
        )

    # ------------------------------------------------------------------
    # Compiled engine: drive the kernel round by round
    # ------------------------------------------------------------------
    def _run_batched(self, streams: Sequence[Sequence[Event]]) -> FleetResult:
        kernel = self.kernel
        n = len(streams)
        kernel.reset(n)
        lengths = np.array([len(stream) for stream in streams], dtype=np.int64)
        max_len = int(lengths.max()) if n else 0
        if max_len == 0:
            return kernel.result(engine=self.engine)
        # intern every stream once up front: rounds become pure column
        # slices of the padded (N, max_len) id matrices
        src_matrix = np.zeros((n, max_len), dtype=np.int64)
        sig_matrix = np.zeros((n, max_len), dtype=np.int64)
        timer = lambda e: e.time  # noqa: E731
        for i, stream in enumerate(streams):
            if not stream:
                continue
            ordered = sorted(stream, key=timer)
            src_ids, sig_ids = kernel.prepare_events(ordered)
            src_matrix[i, : len(ordered)] = src_ids
            sig_matrix[i, : len(ordered)] = sig_ids
        for round_k in range(max_len):
            rows = np.flatnonzero(lengths > round_k)
            kernel.dispatch_ids(
                rows, src_matrix[rows, round_k], sig_matrix[rows, round_k]
            )
        return kernel.result(engine=self.engine)

    # ------------------------------------------------------------------
    # Process-pool sharding
    # ------------------------------------------------------------------
    def _run_pool(
        self, streams: Sequence[Sequence[Event]], workers: int
    ) -> FleetResult:
        import multiprocessing

        from ..petrinet.serialization import net_to_json

        effective = min(workers, len(streams))
        bounds = np.linspace(0, len(streams), effective + 1, dtype=int)
        chunks = [
            list(streams[bounds[w] : bounds[w + 1]]) for w in range(effective)
        ]
        net_json = net_to_json(self.net)
        payload = [
            (
                net_json,
                dict(self.assignment.modules),
                self.cost,
                self.max_firings_per_event,
                self.engine,
                self.on_budget,
                self.timing,
                chunk,
            )
            for chunk in chunks
            if chunk
        ]
        with multiprocessing.Pool(len(payload)) as pool:
            parts = pool.map(_run_fleet_chunk, payload)
        aggregate = ExecutionStats()
        for part in parts:
            aggregate.merge(part.stats)
        return FleetResult(
            stats=aggregate,
            instance_cycles=np.concatenate(
                [part.instance_cycles for part in parts]
            ),
            instance_events=np.concatenate(
                [part.instance_events for part in parts]
            ),
            engine=self.engine,
            instance_ticks=(
                np.concatenate([part.instance_ticks for part in parts])
                if self.timing is not None
                else None
            ),
        )


def _run_fleet_chunk(
    payload: Tuple[
        str,
        Dict[str, str],
        CostModel,
        int,
        str,
        str,
        Optional[TimingModel],
        List[Sequence[Event]],
    ]
) -> FleetResult:  # pragma: no cover - executed inside pool workers
    from ..petrinet.serialization import net_from_json

    net_json, modules, cost, max_firings, engine, on_budget, timing, streams = payload
    simulator = FleetSimulator(
        net_from_json(net_json),
        ModuleAssignment(modules=modules),
        cost,
        max_firings_per_event=max_firings,
        engine=engine,
        on_budget=on_budget,
        timing=timing,
    )
    return simulator.run(streams)


# ----------------------------------------------------------------------
# Generic workload synthesis (any net)
# ----------------------------------------------------------------------
def synthetic_streams(
    net: Union[PetriNet, CompiledNet],
    instances: int,
    events_per_instance: int,
    seed: int = 0,
    mean_interval: float = 1.0,
    arrival: str = "exponential",
    choice_policy: Optional[StochasticChoicePolicy] = None,
) -> List[List[Event]]:
    """Reproducible per-instance event streams for an arbitrary net.

    Every source transition of the net emits events through the chosen
    arrival process (``"exponential"`` — the historical default — or the
    ``"bursty"`` / ``"diurnal"`` processes of
    :mod:`repro.runtime.events`); the per-instance streams are merged in
    time order and truncated to ``events_per_instance``, and every event
    carries choice resolutions drawn from a per-instance seeded
    :class:`~repro.runtime.events.ChoiceSampler` — uniformly over each
    choice place's successors by default, or from the weighted odds of
    ``choice_policy``.  Used by the corpus runtime sweep and the
    differential suites; nets without source transitions yield empty
    streams.  The streams are fully determined by the arguments —
    identical across processes and platforms
    (`tests/test_service_differential.py` pins the default path,
    `tests/test_stochastic_determinism.py` the new arrival processes and
    weighted policies, because the service's process-backed shards rely
    on it).
    """
    validate_arrival(arrival)
    named = net.decompile() if isinstance(net, CompiledNet) else net
    sources = named.source_transitions()
    if choice_policy is not None:
        probabilities = choice_policy.probabilities
    else:
        probabilities = {
            place: {t: 1.0 for t in named.postset_names(place)}
            for place in named.choice_places()
        }
    streams: List[List[Event]] = []
    for i in range(instances):
        if not sources:
            streams.append([])
            continue
        base = seed * 1_000_003 + i * 7_919
        per_source = [
            arrival_events(
                arrival,
                source,
                mean_interval=mean_interval,
                count=events_per_instance,
                seed=base + s_idx,
            )
            for s_idx, source in enumerate(sources)
        ]
        merged = merge_streams(*per_source)[:events_per_instance]
        sampler = ChoiceSampler(probabilities, seed=base + 104_729)
        streams.append(with_choices(merged, sampler))
    return streams
