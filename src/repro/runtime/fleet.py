"""Batched multi-instance execution: serving fleets of net instances.

One reactive simulation answers "what does *one* deployed system do
under this event stream?".  The production question is different: a
server farm runs *thousands* of independent instances of the same
specification, each against its own event stream.  Stepping them one by
one through :class:`~repro.runtime.reactive.ReactiveNetSimulator` pays
the full Python event loop per instance; :class:`FleetSimulator` steps
all of them *together* on the compiled engine:

* the fleet state is a single ``(N, P)`` int64 numpy matrix — one row
  per instance, one column per compiled place id;
* enabledness of every transition in every instance is one vectorized
  comparison against the compiled ``pre`` matrix (``(N, T)`` boolean);
* each event round dispatches the next event of every instance at once
  (per-instance seeded :class:`~repro.runtime.events.ChoiceSampler`
  resolutions become per-row "allowed" masks), then runs all instances
  to quiescence in lock-step — one batched firing per iteration per
  still-active instance;
* accounting (cycles, activations, queue traffic, firings) accumulates
  in integer arrays and is folded into one aggregate
  :class:`~repro.runtime.rtos.ExecutionStats` plus per-instance cycle
  totals at the end, so percentiles across the fleet come for free.

``engine="legacy"`` runs the same fleet one instance at a time on the
string-keyed reactive simulator — the baseline
``benchmarks/bench_runtime_fleet.py`` holds the batched engine's >= 5x
contract against.  Both engines produce identical aggregate stats and
identical per-instance cycle vectors
(`tests/test_runtime_compiled_differential.py`).

``run(streams, workers=N)`` additionally shards the fleet over a
``multiprocessing`` pool (contiguous instance chunks, one batched
simulator per worker) and merges the chunk results in order, so the
result is byte-identical to the sequential run.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple, Union

import numpy as np

from ..petrinet import PetriNet
from ..petrinet.compiled import (
    ENGINE_COMPILED,
    ENGINE_LEGACY,
    CompiledNet,
    compile_net,
    validate_engine,
)
from ..petrinet.exceptions import NotEnabledError
from .cost import CostModel
from .events import ChoiceSampler, Event, irregular_events, merge_streams, with_choices
from .reactive import (
    QUIESCENCE_MESSAGE,
    ModuleAssignment,
    ReactiveNetSimulator,
    validate_budget_policy,
)
from .rtos import ExecutionStats


@dataclass
class FleetResult:
    """Outcome of one fleet run.

    Attributes
    ----------
    stats:
        Aggregate :class:`ExecutionStats` over every instance (cycles,
        activations per task, firings per transition, events, budget
        stops).
    instance_cycles / instance_events:
        Per-instance totals, index-aligned with the input streams.
    engine:
        The engine that produced the result.
    elapsed_seconds:
        Wall-clock of the run (the denominator of :attr:`throughput_eps`).
    """

    stats: ExecutionStats
    instance_cycles: np.ndarray
    instance_events: np.ndarray
    engine: str
    elapsed_seconds: float = 0.0

    @property
    def instances(self) -> int:
        return int(len(self.instance_cycles))

    @property
    def throughput_eps(self) -> float:
        """Events served per wall-clock second."""
        if self.elapsed_seconds <= 0:
            return 0.0
        return self.stats.events_processed / self.elapsed_seconds

    def percentile(self, q: float) -> float:
        """Percentile of the per-instance total-cycle distribution."""
        if len(self.instance_cycles) == 0:
            return 0.0
        return float(np.percentile(self.instance_cycles, q))

    def percentiles(
        self, qs: Sequence[float] = (50, 90, 95, 99)
    ) -> Dict[str, float]:
        """The standard latency-style summary of the cycle distribution."""
        return {f"p{q:g}": self.percentile(q) for q in qs}

    def describe(self) -> str:
        lines = [
            f"fleet of {self.instances} instance(s) ({self.engine} engine)",
            self.stats.describe(),
            "per-instance cycles: "
            + ", ".join(
                f"{name}={value:.0f}" for name, value in self.percentiles().items()
            ),
        ]
        if self.elapsed_seconds > 0:
            lines.append(
                f"throughput: {self.throughput_eps:.0f} events/s "
                f"({self.elapsed_seconds:.3f}s wall)"
            )
        return "\n".join(lines)


class FleetSimulator:
    """Steps N independent instances of one net as a single batch.

    Parameters
    ----------
    net:
        The specification (:class:`PetriNet` or pre-compiled
        :class:`CompiledNet`).
    assignment:
        Task of every transition (must cover *all* transitions — the
        batched engine precomputes the module table up front).
    cost_model / max_firings_per_event / on_budget:
        As for :class:`~repro.runtime.reactive.ReactiveNetSimulator`.
    engine:
        ``"compiled"`` (default) runs the vectorized batch; ``"legacy"``
        loops a string-keyed reactive simulator over the instances (the
        benchmark baseline).
    """

    def __init__(
        self,
        net: Union[PetriNet, CompiledNet],
        assignment: ModuleAssignment,
        cost_model: Optional[CostModel] = None,
        max_firings_per_event: int = 100_000,
        engine: str = ENGINE_COMPILED,
        on_budget: str = "error",
    ) -> None:
        self.engine = validate_engine(engine)
        self.on_budget = validate_budget_policy(on_budget)
        self.assignment = assignment
        self.cost = cost_model or CostModel()
        self.max_firings_per_event = max_firings_per_event
        compiled = net if isinstance(net, CompiledNet) else None
        self._net: Optional[PetriNet] = None if compiled is not None else net
        # the legacy engine never touches the batch tables, so it skips
        # both the compilation and the table preparation entirely
        if self.engine == ENGINE_COMPILED:
            self.cnet: Optional[CompiledNet] = compiled or compile_net(net)
            self._prepare_tables()
        else:
            self.cnet = compiled

    @property
    def net(self) -> PetriNet:
        """The named view of the specification (decompiled on demand)."""
        if self._net is None:
            self._net = self.cnet.decompile()
        return self._net

    def _prepare_tables(self) -> None:
        cnet = self.cnet
        n_t = len(cnet.transitions)
        # module table: id per transition, names indexed by module id
        module_names: List[str] = []
        module_index: Dict[str, int] = {}
        module_of = np.empty(n_t, dtype=np.int64)
        for t_id, name in enumerate(cnet.transitions):
            module = self.assignment.module_of(name)
            if module not in module_index:
                module_index[module] = len(module_names)
                module_names.append(module)
            module_of[t_id] = module_index[module]
        self._module_names = module_names
        self._module_of = module_of
        transition_cycles = self.cost.transition_cycles
        test_cycles = self.cost.test_cycles
        self._fire_cycles = np.array(
            [cost * transition_cycles + test_cycles for cost in cnet.costs],
            dtype=np.int64,
        )
        self._nonsource = np.array(
            [bool(pairs) for pairs in cnet.pre_lists], dtype=bool
        )
        # successor transition ids per choice place id, for the per-event
        # "allowed" masks
        successors: Dict[int, List[int]] = {}
        for t_id, pairs in enumerate(cnet.pre_lists):
            for p_id, _w in pairs:
                successors.setdefault(p_id, []).append(t_id)
        self._choice_successors: Dict[int, np.ndarray] = {
            p_id: np.array(t_ids, dtype=np.int64)
            for p_id, t_ids in successors.items()
            if len(t_ids) > 1
        }
        # choice signatures repeat heavily across events (a handful of
        # binary choices), so the deselected-transition column set per
        # distinct resolution dict is memoized
        self._deselect_cache: Dict[Tuple[Tuple[str, str], ...], np.ndarray] = {}

    def _deselect_columns(
        self, signature: Tuple[Tuple[str, str], ...]
    ) -> np.ndarray:
        """Transition ids deselected by one event's choice resolutions.

        A transition is deselected when any choice place in its preset
        resolved to a different successor — the same filter
        :class:`ReactiveNetSimulator` applies per transition.
        """
        columns = self._deselect_cache.get(signature)
        if columns is None:
            transition_index = self.cnet.transition_index
            place_index = self.cnet.place_index
            ids: set = set()
            for place, chosen in signature:
                p_id = place_index.get(place)
                if p_id is None:
                    continue
                successors = self._choice_successors.get(p_id)
                if successors is None:
                    continue
                chosen_id = transition_index.get(chosen, -1)
                ids.update(successors[successors != chosen_id].tolist())
            columns = np.array(sorted(ids), dtype=np.int64)
            self._deselect_cache[signature] = columns
        return columns

    # ------------------------------------------------------------------
    # Entry point
    # ------------------------------------------------------------------
    def run(
        self, streams: Sequence[Sequence[Event]], workers: int = 1
    ) -> FleetResult:
        """Execute one event stream per instance and return the fleet result.

        ``workers > 1`` shards the instances over a multiprocessing pool
        (identical results, merged in instance order).
        """
        started = time.perf_counter()
        if workers > 1 and len(streams) > 1:
            result = self._run_pool(streams, workers)
        elif self.engine == ENGINE_LEGACY:
            result = self._run_legacy(streams)
        else:
            result = self._run_batched(streams)
        result.elapsed_seconds = time.perf_counter() - started
        return result

    # ------------------------------------------------------------------
    # Legacy baseline: one reactive simulator, instance by instance
    # ------------------------------------------------------------------
    def _run_legacy(self, streams: Sequence[Sequence[Event]]) -> FleetResult:
        aggregate = ExecutionStats()
        cycles = np.zeros(len(streams), dtype=np.int64)
        events = np.zeros(len(streams), dtype=np.int64)
        simulator = ReactiveNetSimulator(
            self.net,
            self.assignment,
            self.cost,
            max_firings_per_event=self.max_firings_per_event,
            engine=ENGINE_LEGACY,
            on_budget=self.on_budget,
        )
        for i, stream in enumerate(streams):
            simulator.reset()
            stats = simulator.run(stream)
            cycles[i] = stats.total_cycles
            events[i] = stats.events_processed
            aggregate.merge(stats)
        return FleetResult(
            stats=aggregate,
            instance_cycles=cycles,
            instance_events=events,
            engine=self.engine,
        )

    # ------------------------------------------------------------------
    # Compiled engine: the (N, P) batch
    # ------------------------------------------------------------------
    def _run_batched(self, streams: Sequence[Sequence[Event]]) -> FleetResult:
        cnet = self.cnet
        n = len(streams)
        n_t = len(cnet.transitions)
        pre = cnet.pre
        incidence = cnet.incidence
        fire_cycles = self._fire_cycles
        module_of = self._module_of
        nonsource = self._nonsource
        transition_index = cnet.transition_index
        activation = self.cost.activation_cycles
        queue_round_trip = 2 * self.cost.queue_op_cycles
        budget = self.max_firings_per_event
        stop_on_budget = self.on_budget == "stop"

        ordered = [sorted(stream, key=lambda e: e.time) for stream in streams]
        lengths = np.array([len(stream) for stream in ordered], dtype=np.int64)

        markings = np.tile(np.array(cnet.initial, dtype=np.int64), (n, 1))
        cycles = np.zeros(n, dtype=np.int64)
        events = np.zeros(n, dtype=np.int64)
        fire_counts = np.zeros(n_t, dtype=np.int64)
        activation_counts = np.zeros(len(self._module_names), dtype=np.int64)
        activation_total = 0
        body_total = 0
        queue_total = 0
        budget_stops = 0

        for round_k in range(int(lengths.max()) if n else 0):
            rows = np.flatnonzero(lengths > round_k)
            count = len(rows)
            # per-round event tables: source ids and data-choice masks,
            # grouped by choice signature so each distinct resolution
            # dict costs one batched scatter instead of one per instance
            src_ids = np.empty(count, dtype=np.int64)
            allowed = np.ones((count, n_t), dtype=bool)
            groups: Dict[Tuple[Tuple[str, str], ...], List[int]] = {}
            for j, i in enumerate(rows):
                event = ordered[i][round_k]
                try:
                    src_ids[j] = transition_index[event.source]
                except KeyError:
                    raise NotEnabledError(
                        f"unknown source transition {event.source!r}"
                    ) from None
                if event.choices:
                    signature = tuple(sorted(event.choices.items()))
                    groups.setdefault(signature, []).append(j)
            for signature, members in groups.items():
                columns = self._deselect_columns(signature)
                if columns.size:
                    allowed[np.ix_(np.array(members, dtype=np.int64), columns)] = False

            # dispatch: one activation per event, then fire the source
            src_modules = module_of[src_ids]
            if not np.all(markings[rows] >= pre[src_ids]):
                bad = rows[~np.all(markings[rows] >= pre[src_ids], axis=1)][0]
                name = ordered[bad][round_k].source
                raise NotEnabledError(
                    f"transition {name!r} is not enabled in instance {bad}"
                )
            cycles[rows] += activation + fire_cycles[src_ids]
            np.add.at(activation_counts, src_modules, 1)
            activation_total += activation * count
            markings[rows] += incidence[src_ids]
            np.add.at(fire_counts, src_ids, 1)
            body_total += int(fire_cycles[src_ids].sum())
            events[rows] += 1

            # run to quiescence, one batched firing per iteration
            current_module = src_modules.copy()
            firings = np.ones(count, dtype=np.int64)
            active = np.arange(count)
            while active.size:
                sub_rows = rows[active]
                enabled = np.all(
                    markings[sub_rows][:, np.newaxis, :] >= pre[np.newaxis, :, :],
                    axis=2,
                )
                candidates = enabled & allowed[active] & nonsource[np.newaxis, :]
                has_candidate = candidates.any(axis=1)
                active = active[has_candidate]
                if not active.size:
                    break
                candidates = candidates[has_candidate]
                sub_rows = rows[active]
                # argmax of a boolean row = first True = lowest transition
                # id = the legacy "first candidate in insertion order"
                chosen = candidates.argmax(axis=1)
                modules = module_of[chosen]
                crossed = modules != current_module[active]
                if crossed.any():
                    crossed_count = int(crossed.sum())
                    cycles[sub_rows[crossed]] += queue_round_trip + activation
                    queue_total += queue_round_trip * crossed_count
                    activation_total += activation * crossed_count
                    np.add.at(activation_counts, modules[crossed], 1)
                current_module[active] = modules
                markings[sub_rows] += incidence[chosen]
                cycles[sub_rows] += fire_cycles[chosen]
                np.add.at(fire_counts, chosen, 1)
                body_total += int(fire_cycles[chosen].sum())
                firings[active] += 1
                over = firings[active] > budget
                if over.any():
                    if not stop_on_budget:
                        raise RuntimeError(QUIESCENCE_MESSAGE)
                    budget_stops += int(over.sum())
                    active = active[~over]

        stats = ExecutionStats()
        stats.events_processed = int(events.sum())
        stats.activation_cycles = activation_total
        stats.body_cycles = body_total
        stats.queue_cycles = queue_total
        stats.total_cycles = activation_total + body_total + queue_total
        stats.budget_stops = budget_stops
        stats.activations = {
            self._module_names[m]: int(c)
            for m, c in enumerate(activation_counts)
            if c
        }
        stats.firings = {
            cnet.transitions[t]: int(c) for t, c in enumerate(fire_counts) if c
        }
        return FleetResult(
            stats=stats,
            instance_cycles=cycles,
            instance_events=events,
            engine=self.engine,
        )

    # ------------------------------------------------------------------
    # Process-pool sharding
    # ------------------------------------------------------------------
    def _run_pool(
        self, streams: Sequence[Sequence[Event]], workers: int
    ) -> FleetResult:
        import multiprocessing

        from ..petrinet.serialization import net_to_json

        effective = min(workers, len(streams))
        bounds = np.linspace(0, len(streams), effective + 1, dtype=int)
        chunks = [
            list(streams[bounds[w] : bounds[w + 1]]) for w in range(effective)
        ]
        net_json = net_to_json(self.net)
        payload = [
            (
                net_json,
                dict(self.assignment.modules),
                self.cost,
                self.max_firings_per_event,
                self.engine,
                self.on_budget,
                chunk,
            )
            for chunk in chunks
            if chunk
        ]
        with multiprocessing.Pool(len(payload)) as pool:
            parts = pool.map(_run_fleet_chunk, payload)
        aggregate = ExecutionStats()
        for part in parts:
            aggregate.merge(part.stats)
        return FleetResult(
            stats=aggregate,
            instance_cycles=np.concatenate(
                [part.instance_cycles for part in parts]
            ),
            instance_events=np.concatenate(
                [part.instance_events for part in parts]
            ),
            engine=self.engine,
        )


def _run_fleet_chunk(
    payload: Tuple[str, Dict[str, str], CostModel, int, str, str, List[Sequence[Event]]]
) -> FleetResult:  # pragma: no cover - executed inside pool workers
    from ..petrinet.serialization import net_from_json

    net_json, modules, cost, max_firings, engine, on_budget, streams = payload
    simulator = FleetSimulator(
        net_from_json(net_json),
        ModuleAssignment(modules=modules),
        cost,
        max_firings_per_event=max_firings,
        engine=engine,
        on_budget=on_budget,
    )
    return simulator.run(streams)


# ----------------------------------------------------------------------
# Generic workload synthesis (any net)
# ----------------------------------------------------------------------
def synthetic_streams(
    net: Union[PetriNet, CompiledNet],
    instances: int,
    events_per_instance: int,
    seed: int = 0,
    mean_interval: float = 1.0,
) -> List[List[Event]]:
    """Reproducible per-instance event streams for an arbitrary net.

    Every source transition of the net emits events with exponential
    inter-arrival times; the per-instance streams are merged in time
    order and truncated to ``events_per_instance``, and every event
    carries choice resolutions drawn uniformly over each choice place's
    successors from a per-instance seeded
    :class:`~repro.runtime.events.ChoiceSampler`.  Used by the corpus
    runtime sweep and the differential suite; nets without source
    transitions yield empty streams.
    """
    named = net.decompile() if isinstance(net, CompiledNet) else net
    sources = named.source_transitions()
    probabilities = {
        place: {t: 1.0 for t in named.postset_names(place)}
        for place in named.choice_places()
    }
    streams: List[List[Event]] = []
    for i in range(instances):
        if not sources:
            streams.append([])
            continue
        base = seed * 1_000_003 + i * 7_919
        per_source = [
            irregular_events(
                source,
                mean_interval=mean_interval,
                count=events_per_instance,
                seed=base + s_idx,
            )
            for s_idx, source in enumerate(sources)
        ]
        merged = merge_streams(*per_source)[:events_per_instance]
        sampler = ChoiceSampler(probabilities, seed=base + 104_729)
        streams.append(with_choices(merged, sampler))
    return streams
