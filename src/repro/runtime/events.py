"""Environment event streams for the simulated target.

The embedded system reacts to external events — in the ATM server, the
irregular *Cell* interrupt and the periodic *Tick*.  This module models
events, periodic and irregular (seeded pseudo-random) streams, and their
interleaving into a single time-ordered testbench.

Each event carries the resolutions of the data-dependent choices that the
processing of that event will encounter, because in the real system those
decisions depend on the data carried by the event (cell contents, buffer
occupancy); the workload generators in :mod:`repro.apps.atm.workload`
draw them from configurable probabilities.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, Iterable, Iterator, List, Mapping, Optional, Sequence


@dataclass(frozen=True)
class Event:
    """One environment event.

    Attributes
    ----------
    time:
        Arrival time (abstract time units; only the ordering matters to
        the RTOS simulator).
    source:
        Name of the source transition the event triggers (e.g. ``t_cell``).
    choices:
        Resolutions of the data-dependent choices for the processing of
        this event: ``{choice place: chosen transition}``.
    payload:
        Optional free-form data (used by application-level examples).
    """

    time: float
    source: str
    choices: Mapping[str, str] = field(default_factory=dict)
    payload: Optional[object] = None


def periodic_events(
    source: str,
    period: float,
    count: int,
    start: float = 0.0,
    choices: Optional[Mapping[str, str]] = None,
) -> List[Event]:
    """``count`` events spaced ``period`` apart (e.g. the ATM Tick)."""
    if period <= 0:
        raise ValueError("period must be positive")
    return [
        Event(time=start + i * period, source=source, choices=dict(choices or {}))
        for i in range(count)
    ]


def irregular_events(
    source: str,
    mean_interval: float,
    count: int,
    seed: int = 0,
    start: float = 0.0,
    choices: Optional[Mapping[str, str]] = None,
) -> List[Event]:
    """``count`` events with exponentially distributed inter-arrival times.

    Models inputs that occur "at irregular times", like the non-empty
    cell arrivals of the ATM server.  The stream is fully determined by
    ``seed`` so experiments are reproducible.
    """
    if mean_interval <= 0:
        raise ValueError("mean_interval must be positive")
    rng = random.Random(seed)
    events = []
    time = start
    for _ in range(count):
        time += rng.expovariate(1.0 / mean_interval)
        events.append(Event(time=time, source=source, choices=dict(choices or {})))
    return events


def merge_streams(*streams: Sequence[Event]) -> List[Event]:
    """Merge several event streams into one, ordered by time (stable)."""
    merged: List[Event] = []
    for stream in streams:
        merged.extend(stream)
    merged.sort(key=lambda event: event.time)
    return merged


def with_choices(
    events: Iterable[Event], resolver: "ChoiceSampler"
) -> List[Event]:
    """Return a copy of ``events`` with choice resolutions drawn from
    ``resolver`` (one draw per event)."""
    return [
        Event(
            time=event.time,
            source=event.source,
            choices=resolver.sample(event.source),
            payload=event.payload,
        )
        for event in events
    ]


class ChoiceSampler:
    """Draws choice resolutions from per-place branch probabilities.

    Parameters
    ----------
    probabilities:
        ``{choice place: {successor transition: probability}}``; the
        probabilities of each place are normalized automatically.
    seed:
        Seed of the private random stream.
    per_source:
        Optional restriction ``{source: [choice places]}``: when given,
        an event from ``source`` only receives resolutions for its own
        places (the other tasks' choices are irrelevant to it).
    """

    def __init__(
        self,
        probabilities: Mapping[str, Mapping[str, float]],
        seed: int = 0,
        per_source: Optional[Mapping[str, Sequence[str]]] = None,
    ) -> None:
        self._probabilities = {
            place: dict(branches) for place, branches in probabilities.items()
        }
        self._rng = random.Random(seed)
        self._per_source = (
            {source: list(places) for source, places in per_source.items()}
            if per_source
            else None
        )

    def sample(self, source: Optional[str] = None) -> Dict[str, str]:
        """Draw one resolution for every relevant choice place."""
        if self._per_source is not None and source is not None:
            places = self._per_source.get(source, [])
        else:
            places = list(self._probabilities)
        resolution: Dict[str, str] = {}
        for place in places:
            branches = self._probabilities[place]
            total = sum(branches.values())
            draw = self._rng.random() * total
            cumulative = 0.0
            chosen = next(iter(branches))
            for transition, weight in branches.items():
                cumulative += weight
                if draw <= cumulative:
                    chosen = transition
                    break
            resolution[place] = chosen
        return resolution
