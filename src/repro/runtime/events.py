"""Environment event streams for the simulated target.

The embedded system reacts to external events — in the ATM server, the
irregular *Cell* interrupt and the periodic *Tick*.  This module models
events, periodic and irregular (seeded pseudo-random) streams, and their
interleaving into a single time-ordered testbench.

Each event carries the resolutions of the data-dependent choices that the
processing of that event will encounter, because in the real system those
decisions depend on the data carried by the event (cell contents, buffer
occupancy); the workload generators in :mod:`repro.apps.atm.workload`
draw them from configurable probabilities.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass, field
from typing import Dict, Iterable, Iterator, List, Mapping, Optional, Sequence


@dataclass(frozen=True)
class Event:
    """One environment event.

    Attributes
    ----------
    time:
        Arrival time (abstract time units; only the ordering matters to
        the RTOS simulator).
    source:
        Name of the source transition the event triggers (e.g. ``t_cell``).
    choices:
        Resolutions of the data-dependent choices for the processing of
        this event: ``{choice place: chosen transition}``.
    payload:
        Optional free-form data (used by application-level examples).
    """

    time: float
    source: str
    choices: Mapping[str, str] = field(default_factory=dict)
    payload: Optional[object] = None


def periodic_events(
    source: str,
    period: float,
    count: int,
    start: float = 0.0,
    choices: Optional[Mapping[str, str]] = None,
) -> List[Event]:
    """``count`` events spaced ``period`` apart (e.g. the ATM Tick)."""
    if period <= 0:
        raise ValueError("period must be positive")
    return [
        Event(time=start + i * period, source=source, choices=dict(choices or {}))
        for i in range(count)
    ]


def irregular_events(
    source: str,
    mean_interval: float,
    count: int,
    seed: int = 0,
    start: float = 0.0,
    choices: Optional[Mapping[str, str]] = None,
) -> List[Event]:
    """``count`` events with exponentially distributed inter-arrival times.

    Models inputs that occur "at irregular times", like the non-empty
    cell arrivals of the ATM server.  The stream is fully determined by
    ``seed`` so experiments are reproducible.
    """
    if mean_interval <= 0:
        raise ValueError("mean_interval must be positive")
    rng = random.Random(seed)
    events = []
    time = start
    for _ in range(count):
        time += rng.expovariate(1.0 / mean_interval)
        events.append(Event(time=time, source=source, choices=dict(choices or {})))
    return events


def bursty_events(
    source: str,
    mean_interval: float,
    count: int,
    seed: int = 0,
    start: float = 0.0,
    burst_mean: float = 4.0,
    burst_spread: float = 0.1,
    idle_factor: float = 5.0,
    choices: Optional[Mapping[str, str]] = None,
) -> List[Event]:
    """``count`` events arriving in bursts separated by long idle gaps.

    Models on/off traffic (a line card receiving packet trains, a
    sensor delivering readings in flurries): burst sizes are geometric
    with mean ``burst_mean``, events inside a burst are
    ``burst_spread * mean_interval`` apart on average, and the idle gap
    between bursts averages ``idle_factor * mean_interval``.  The
    defaults keep the *long-run* mean inter-arrival time in the same
    ballpark as :func:`irregular_events` while concentrating the
    arrivals, which is what stresses run-to-completion serving.  Fully
    determined by ``seed``.
    """
    if mean_interval <= 0:
        raise ValueError("mean_interval must be positive")
    if burst_mean < 1:
        raise ValueError("burst_mean must be at least 1")
    rng = random.Random(seed)
    events: List[Event] = []
    time = start
    p_stop = 1.0 / burst_mean
    while len(events) < count:
        # idle gap before the burst
        time += rng.expovariate(1.0 / (idle_factor * mean_interval))
        # geometric burst size (at least one event)
        while len(events) < count:
            events.append(
                Event(time=time, source=source, choices=dict(choices or {}))
            )
            if rng.random() < p_stop:
                break
            time += rng.expovariate(1.0 / (burst_spread * mean_interval))
    return events


def diurnal_events(
    source: str,
    mean_interval: float,
    count: int,
    seed: int = 0,
    start: float = 0.0,
    amplitude: float = 0.8,
    period: float = 24.0,
    choices: Optional[Mapping[str, str]] = None,
) -> List[Event]:
    """``count`` events whose arrival rate swings sinusoidally over a day.

    A non-homogeneous arrival process: the instantaneous rate is
    ``(1 + amplitude * sin(2*pi*t / period)) / mean_interval``, so
    traffic peaks once per ``period`` (the diurnal cycle of user-facing
    services) and ebbs ``amplitude`` below the mean in the trough.
    Inter-arrival gaps are exponential at the rate in force when the
    previous event arrived, which keeps the stream fully determined by
    ``seed``.
    """
    if mean_interval <= 0:
        raise ValueError("mean_interval must be positive")
    if not 0.0 <= amplitude < 1.0:
        raise ValueError("amplitude must be in [0, 1)")
    if period <= 0:
        raise ValueError("period must be positive")
    rng = random.Random(seed)
    events: List[Event] = []
    time = start
    two_pi = 2.0 * math.pi
    for _ in range(count):
        rate = (1.0 + amplitude * math.sin(two_pi * time / period)) / mean_interval
        time += rng.expovariate(rate)
        events.append(Event(time=time, source=source, choices=dict(choices or {})))
    return events


#: Arrival-process kinds accepted by :func:`arrival_events` (and the
#: ``arrival=`` argument of :func:`repro.runtime.fleet.synthetic_streams`
#: / the ``--arrival`` flag of ``repro-qss serve``).
ARRIVAL_PROCESSES = ("exponential", "bursty", "diurnal")


def validate_arrival(arrival: str) -> str:
    """Validate an ``arrival=`` kind argument, returning it unchanged."""
    if arrival not in ARRIVAL_PROCESSES:
        raise ValueError(
            f"unknown arrival process {arrival!r}; expected one of "
            f"{', '.join(ARRIVAL_PROCESSES)}"
        )
    return arrival


def arrival_events(
    arrival: str,
    source: str,
    mean_interval: float,
    count: int,
    seed: int = 0,
    start: float = 0.0,
    choices: Optional[Mapping[str, str]] = None,
) -> List[Event]:
    """Dispatch to the named arrival process with a shared signature.

    ``"exponential"`` is :func:`irregular_events` (memoryless Poisson
    arrivals, the historical default), ``"bursty"`` is
    :func:`bursty_events`, ``"diurnal"`` is :func:`diurnal_events` —
    all seeded, all with comparable long-run mean rates.
    """
    validate_arrival(arrival)
    if arrival == "bursty":
        return bursty_events(
            source, mean_interval, count, seed=seed, start=start, choices=choices
        )
    if arrival == "diurnal":
        return diurnal_events(
            source, mean_interval, count, seed=seed, start=start, choices=choices
        )
    return irregular_events(
        source, mean_interval, count, seed=seed, start=start, choices=choices
    )


def merge_streams(*streams: Sequence[Event]) -> List[Event]:
    """Merge several event streams into one, ordered by time (stable)."""
    merged: List[Event] = []
    for stream in streams:
        merged.extend(stream)
    merged.sort(key=lambda event: event.time)
    return merged


def with_choices(
    events: Iterable[Event], resolver: "ChoiceSampler"
) -> List[Event]:
    """Return a copy of ``events`` with choice resolutions drawn from
    ``resolver`` (one draw per event)."""
    return [
        Event(
            time=event.time,
            source=event.source,
            choices=resolver.sample(event.source),
            payload=event.payload,
        )
        for event in events
    ]


class ChoiceSampler:
    """Draws choice resolutions from per-place branch probabilities.

    Parameters
    ----------
    probabilities:
        ``{choice place: {successor transition: probability}}``; the
        probabilities of each place are normalized automatically.
    seed:
        Seed of the private random stream.
    per_source:
        Optional restriction ``{source: [choice places]}``: when given,
        an event from ``source`` only receives resolutions for its own
        places (the other tasks' choices are irrelevant to it).
    """

    def __init__(
        self,
        probabilities: Mapping[str, Mapping[str, float]],
        seed: int = 0,
        per_source: Optional[Mapping[str, Sequence[str]]] = None,
    ) -> None:
        self._probabilities = {
            place: dict(branches) for place, branches in probabilities.items()
        }
        self._rng = random.Random(seed)
        self._per_source = (
            {source: list(places) for source, places in per_source.items()}
            if per_source
            else None
        )

    def sample(self, source: Optional[str] = None) -> Dict[str, str]:
        """Draw one resolution for every relevant choice place."""
        if self._per_source is not None and source is not None:
            places = self._per_source.get(source, [])
        else:
            places = list(self._probabilities)
        resolution: Dict[str, str] = {}
        for place in places:
            branches = self._probabilities[place]
            total = sum(branches.values())
            draw = self._rng.random() * total
            cumulative = 0.0
            chosen = next(iter(branches))
            for transition, weight in branches.items():
                cumulative += weight
                if draw <= cumulative:
                    chosen = transition
                    break
            resolution[place] = chosen
        return resolution
