"""Runtime substrate: cost model, event streams, RTOS and reactive execution."""

from .cost import DEFAULT_COST_MODEL, CostModel
from .events import (
    ChoiceSampler,
    Event,
    irregular_events,
    merge_streams,
    periodic_events,
    with_choices,
)
from .reactive import ModuleAssignment, ReactiveNetSimulator
from .rtos import RTOS, ExecutionStats

__all__ = [
    "CostModel",
    "DEFAULT_COST_MODEL",
    "Event",
    "periodic_events",
    "irregular_events",
    "merge_streams",
    "with_choices",
    "ChoiceSampler",
    "RTOS",
    "ExecutionStats",
    "ModuleAssignment",
    "ReactiveNetSimulator",
]
