"""Runtime substrate: cost model, event streams, RTOS, reactive and fleet execution.

Every execution path in this package takes the stack-wide
``engine="compiled"`` (default) / ``engine="legacy"`` switch:
:class:`ReactiveNetSimulator` runs the event loop either on the
integer-indexed :class:`~repro.petrinet.compiled.CompiledNet` view or on
the string-keyed token game, :class:`RTOS` forwards the switch to the IR
interpreter (lowered opcodes vs direct tree walking), and
:class:`FleetSimulator` batches N net instances into one ``(N, P)``
numpy marking matrix on the compiled engine (its legacy engine is the
per-instance baseline).  Engines always produce identical
:class:`ExecutionStats`; `tests/test_runtime_compiled_differential.py`
is the cross-check suite and `benchmarks/bench_runtime_fleet.py` the
fleet performance contract.
"""

from .cost import DEFAULT_COST_MODEL, CostModel
from .events import (
    ARRIVAL_PROCESSES,
    ChoiceSampler,
    Event,
    arrival_events,
    bursty_events,
    diurnal_events,
    irregular_events,
    merge_streams,
    periodic_events,
    validate_arrival,
    with_choices,
)
from .fleet import (
    FleetEngine,
    FleetResult,
    FleetSimulator,
    SignatureTable,
    synthetic_streams,
)
from .reactive import (
    BUDGET_POLICIES,
    ModuleAssignment,
    ReactiveNetSimulator,
    validate_budget_policy,
)
from .rtos import RTOS, ExecutionStats
from .stochastic import (
    TIMING_SPECS,
    StochasticChoicePolicy,
    TimingModel,
    parse_timing,
)

__all__ = [
    "CostModel",
    "DEFAULT_COST_MODEL",
    "Event",
    "periodic_events",
    "irregular_events",
    "bursty_events",
    "diurnal_events",
    "arrival_events",
    "ARRIVAL_PROCESSES",
    "validate_arrival",
    "merge_streams",
    "with_choices",
    "ChoiceSampler",
    "RTOS",
    "ExecutionStats",
    "ModuleAssignment",
    "ReactiveNetSimulator",
    "BUDGET_POLICIES",
    "validate_budget_policy",
    "FleetSimulator",
    "FleetEngine",
    "FleetResult",
    "SignatureTable",
    "synthetic_streams",
    "TimingModel",
    "StochasticChoicePolicy",
    "TIMING_SPECS",
    "parse_timing",
]
