"""Net-level reactive execution used by the baseline implementations.

The QSS implementation is measured by executing its *generated code*
(:mod:`repro.codegen.interpreter`).  The baselines — functional task
partitioning and fully dynamic scheduling — are measured by executing
the specification directly at the Petri-net level with the same cost
model, plus the task/queue overheads their structure implies:

* every time the locus of execution crosses from one task (module) to
  another, a message is exchanged (queue send + receive) and the target
  task is activated (RTOS overhead);
* data-dependent choices are resolved by the per-event resolutions
  supplied by the workload, exactly as for the generated code.

The simulator processes one input event at a time: it fires the event's
source transition and then keeps firing data-enabled transitions until
the net quiesces, which mirrors a run-to-completion reactive execution.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Sequence, Set, Tuple

from ..petrinet import Marking, PetriNet
from .cost import CostModel
from .events import Event
from .rtos import ExecutionStats


@dataclass
class ModuleAssignment:
    """Assignment of every transition to a module (task) name."""

    modules: Mapping[str, str]

    def module_of(self, transition: str) -> str:
        return self.modules[transition]

    @classmethod
    def single_task(cls, net: PetriNet, name: str = "main") -> "ModuleAssignment":
        return cls(modules={t: name for t in net.transition_names})

    @classmethod
    def one_task_per_transition(cls, net: PetriNet) -> "ModuleAssignment":
        return cls(modules={t: f"task_{t}" for t in net.transition_names})

    @classmethod
    def from_groups(cls, groups: Mapping[str, Sequence[str]]) -> "ModuleAssignment":
        mapping: Dict[str, str] = {}
        for module, transitions in groups.items():
            for transition in transitions:
                mapping[transition] = module
        return cls(modules=mapping)

    @property
    def module_names(self) -> List[str]:
        return sorted(set(self.modules.values()))


class ReactiveNetSimulator:
    """Executes the net event-by-event with task/queue accounting.

    Parameters
    ----------
    net:
        The specification.
    assignment:
        Which task each transition belongs to; crossing tasks costs queue
        traffic plus an activation of the target task.
    cost_model:
        The shared cycle cost model.
    max_firings_per_event:
        Safety bound against runaway event processing (an unschedulable
        specification could otherwise loop forever).
    """

    def __init__(
        self,
        net: PetriNet,
        assignment: ModuleAssignment,
        cost_model: Optional[CostModel] = None,
        max_firings_per_event: int = 100_000,
    ) -> None:
        self.net = net
        self.assignment = assignment
        self.cost = cost_model or CostModel()
        self.max_firings_per_event = max_firings_per_event
        self.marking = net.initial_marking
        self._choice_places = set(net.choice_places())

    def reset(self) -> None:
        self.marking = self.net.initial_marking

    # -- event processing ----------------------------------------------------
    def _data_enabled(self, choices: Mapping[str, str]) -> List[str]:
        """Transitions enabled by both tokens and the event's data.

        A successor of a choice place is only data-enabled when the
        event's resolution selects it; all other transitions follow plain
        token-game enabling.
        """
        enabled = []
        for transition in self.net.enabled_transitions(self.marking):
            selected = True
            for place in self.net.preset_names(transition):
                if place in self._choice_places:
                    chosen = choices.get(place)
                    if chosen is not None and chosen != transition:
                        selected = False
                        break
            if selected:
                enabled.append(transition)
        return enabled

    def process_event(self, event: Event, stats: ExecutionStats) -> None:
        """Fire the event's source and run the net to quiescence."""
        stats.events_processed += 1
        source = event.source
        current_task = self.assignment.module_of(source)
        stats.record_activation(current_task, self.cost.activation_cycles)
        self._fire(source, stats)
        firings = 1
        while True:
            candidates = self._data_enabled(event.choices)
            # never re-fire source transitions spontaneously: they are
            # driven by the environment, one firing per event.
            candidates = [c for c in candidates if self.net.preset(c)]
            if not candidates:
                break
            transition = candidates[0]
            task = self.assignment.module_of(transition)
            if task != current_task:
                # inter-task message: send + receive + activation of target
                stats.record_queue(2 * self.cost.queue_op_cycles)
                stats.record_activation(task, self.cost.activation_cycles)
                current_task = task
            self._fire(transition, stats)
            firings += 1
            if firings > self.max_firings_per_event:
                raise RuntimeError(
                    "event processing did not quiesce; the specification is "
                    "probably not schedulable"
                )

    def _fire(self, transition: str, stats: ExecutionStats) -> None:
        self.marking = self.net.fire(transition, self.marking)
        cost = self.net.transition(transition).cost * self.cost.transition_cycles
        # every transition pays a dispatch test, mirroring the generated
        # code's control tests
        cost += self.cost.test_cycles
        stats.record_body(cost, [transition])

    def run(self, events: Sequence[Event]) -> ExecutionStats:
        stats = ExecutionStats()
        for event in sorted(events, key=lambda e: e.time):
            self.process_event(event, stats)
        return stats
