"""Net-level reactive execution used by the baseline implementations.

The QSS implementation is measured by executing its *generated code*
(:mod:`repro.codegen.interpreter`).  The baselines — functional task
partitioning and fully dynamic scheduling — are measured by executing
the specification directly at the Petri-net level with the same cost
model, plus the task/queue overheads their structure implies:

* every time the locus of execution crosses from one task (module) to
  another, a message is exchanged (queue send + receive) and the target
  task is activated (RTOS overhead);
* data-dependent choices are resolved by the per-event resolutions
  supplied by the workload, exactly as for the generated code.

The simulator processes one input event at a time: it fires the event's
source transition and then keeps firing data-enabled transitions until
the net quiesces, which mirrors a run-to-completion reactive execution.

Like every other hot path of the reproduction, the simulator takes
``engine="compiled"`` (default) or ``engine="legacy"``: the compiled
engine runs the event loop on the integer-indexed
:class:`~repro.petrinet.compiled.CompiledNet` view (dense transition
ids, list-of-int token vectors, generated enabledness checkers), the
legacy engine on the original string-keyed token game.  Both engines
produce identical :class:`~repro.runtime.rtos.ExecutionStats`
(`tests/test_runtime_compiled_differential.py` pins this down); the
compiled path is what makes large fleets
(:mod:`repro.runtime.fleet`) affordable.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Mapping, Optional, Sequence, Tuple, Union

from ..petrinet import Marking, PetriNet
from ..petrinet.compiled import (
    ENGINE_COMPILED,
    ENGINE_LEGACY,
    CompiledNet,
    compile_net,
    validate_engine,
)
from ..petrinet.exceptions import NotEnabledError
from .cost import CostModel
from .events import Event
from .rtos import ExecutionStats
from .stochastic import TimingModel

#: What to do when an event's run-to-completion processing exceeds
#: ``max_firings_per_event``: ``"error"`` raises (the historical
#: behaviour — a quasi-statically schedulable specification quiesces, so
#: hitting the bound indicates a broken model), ``"stop"`` abandons the
#: event after the bound and counts it in ``ExecutionStats.budget_stops``
#: (used by the corpus runtime sweep, where arbitrary generated nets may
#: legitimately never quiesce).
BUDGET_POLICIES = ("error", "stop")

#: The error raised under ``on_budget="error"`` — shared verbatim by the
#: legacy engine, the compiled engine and the fleet simulator so the
#: differential suite can pin identical behaviour.
QUIESCENCE_MESSAGE = (
    "event processing did not quiesce; the specification is "
    "probably not schedulable"
)


def validate_budget_policy(on_budget: str) -> str:
    """Validate an ``on_budget=`` argument, returning it unchanged."""
    if on_budget not in BUDGET_POLICIES:
        raise ValueError(
            f"unknown budget policy {on_budget!r}; expected one of "
            f"{', '.join(BUDGET_POLICIES)}"
        )
    return on_budget


@dataclass
class ModuleAssignment:
    """Assignment of every transition to a module (task) name."""

    modules: Mapping[str, str]

    def module_of(self, transition: str) -> str:
        return self.modules[transition]

    @classmethod
    def single_task(
        cls, net: Union[PetriNet, CompiledNet], name: str = "main"
    ) -> "ModuleAssignment":
        names = net.transitions if isinstance(net, CompiledNet) else net.transition_names
        return cls(modules={t: name for t in names})

    @classmethod
    def one_task_per_transition(
        cls, net: Union[PetriNet, CompiledNet]
    ) -> "ModuleAssignment":
        names = net.transitions if isinstance(net, CompiledNet) else net.transition_names
        return cls(modules={t: f"task_{t}" for t in names})

    @classmethod
    def from_groups(cls, groups: Mapping[str, Sequence[str]]) -> "ModuleAssignment":
        mapping: Dict[str, str] = {}
        for module, transitions in groups.items():
            for transition in transitions:
                mapping[transition] = module
        return cls(modules=mapping)

    @property
    def module_names(self) -> List[str]:
        return sorted(set(self.modules.values()))


class ReactiveNetSimulator:
    """Executes the net event-by-event with task/queue accounting.

    Parameters
    ----------
    net:
        The specification, as a :class:`PetriNet` or a pre-compiled
        :class:`~repro.petrinet.compiled.CompiledNet` (pass the compiled
        view when constructing many simulators of the same net).
    assignment:
        Which task each transition belongs to; crossing tasks costs queue
        traffic plus an activation of the target task.
    cost_model:
        The shared cycle cost model.
    max_firings_per_event:
        Safety bound against runaway event processing (an unschedulable
        specification could otherwise loop forever).
    engine:
        ``"compiled"`` (default) runs the event loop on integer
        transition ids and list-of-int token vectors; ``"legacy"`` on the
        original string-keyed token game.  Identical stats either way.
    on_budget:
        ``"error"`` (default) raises :class:`RuntimeError` when an event
        exceeds ``max_firings_per_event``; ``"stop"`` abandons the event
        and counts it in ``ExecutionStats.budget_stops``.
    timing:
        Optional :class:`~repro.runtime.stochastic.TimingModel` charging
        an integer tick delay per firing into
        ``ExecutionStats.delay_ticks``.  Both engines charge identical
        ticks (the stochastic differential suite pins this).
    """

    def __init__(
        self,
        net: Union[PetriNet, CompiledNet],
        assignment: ModuleAssignment,
        cost_model: Optional[CostModel] = None,
        max_firings_per_event: int = 100_000,
        engine: str = ENGINE_COMPILED,
        on_budget: str = "error",
        timing: Optional[TimingModel] = None,
    ) -> None:
        self.engine = validate_engine(engine)
        self.on_budget = validate_budget_policy(on_budget)
        self.assignment = assignment
        self.cost = cost_model or CostModel()
        self.max_firings_per_event = max_firings_per_event
        self.timing = timing
        if isinstance(net, CompiledNet):
            self.net = net.decompile()
            self._cnet: Optional[CompiledNet] = net
        else:
            self.net = net
            self._cnet = compile_net(net) if engine == ENGINE_COMPILED else None
        self._choice_places = set(self.net.choice_places())
        if self.engine == ENGINE_COMPILED:
            self._prepare_compiled()
            self._vector: List[int] = list(self._cnet.initial)
            self._legacy_marking: Optional[Marking] = None
        else:
            self._legacy_marking = self.net.initial_marking
            self._vector = []

    # -- compiled tables -----------------------------------------------------
    def _prepare_compiled(self) -> None:
        cnet = self._cnet
        assert cnet is not None
        choice_ids = {cnet.place_id(p) for p in self._choice_places}
        # per transition id: the choice-place ids in its preset (the ones
        # an event resolution can deselect it through)
        self._choice_preset: Tuple[Tuple[int, ...], ...] = tuple(
            tuple(p for p, _w in cnet.pre_lists[t] if p in choice_ids)
            for t in range(len(cnet.transitions))
        )
        self._choice_place_ids = choice_ids
        # per transition id: the cycles one firing charges (body plus the
        # dispatch test every transition pays)
        transition_cycles = self.cost.transition_cycles
        test_cycles = self.cost.test_cycles
        self._fire_cycles: Tuple[int, ...] = tuple(
            cost * transition_cycles + test_cycles for cost in cnet.costs
        )
        self._has_preset: Tuple[bool, ...] = tuple(
            bool(pairs) for pairs in cnet.pre_lists
        )
        # per transition id: the tick delay one firing charges (all zero
        # when untimed, so the charge below is branch-free)
        timing = self.timing
        self._tick_table: Tuple[int, ...] = tuple(
            timing.ticks_of(name) if timing else 0 for name in cnet.transitions
        )

    # -- state ---------------------------------------------------------------
    @property
    def marking(self) -> Marking:
        """The current marking, decompiled to a named :class:`Marking`."""
        if self.engine == ENGINE_COMPILED:
            return self._cnet.marking_from_tuple(self._vector)
        return self._legacy_marking

    def reset(self) -> None:
        if self.engine == ENGINE_COMPILED:
            self._vector = list(self._cnet.initial)
        else:
            self._legacy_marking = self.net.initial_marking

    # -- event processing ----------------------------------------------------
    def _data_enabled(self, choices: Mapping[str, str]) -> List[str]:
        """Transitions enabled by both tokens and the event's data.

        A successor of a choice place is only data-enabled when the
        event's resolution selects it; all other transitions follow plain
        token-game enabling.  (Legacy engine only.)
        """
        enabled = []
        for transition in self.net.enabled_transitions(self._legacy_marking):
            selected = True
            for place in self.net.preset_names(transition):
                if place in self._choice_places:
                    chosen = choices.get(place)
                    if chosen is not None and chosen != transition:
                        selected = False
                        break
            if selected:
                enabled.append(transition)
        return enabled

    def process_event(self, event: Event, stats: ExecutionStats) -> None:
        """Fire the event's source and run the net to quiescence."""
        if self.engine == ENGINE_COMPILED:
            self._process_event_compiled(event, stats)
        else:
            self._process_event_legacy(event, stats)

    def _over_budget(self, stats: ExecutionStats) -> bool:
        """Apply the budget policy; True means "stop processing the event"."""
        if self.on_budget == "error":
            raise RuntimeError(QUIESCENCE_MESSAGE)
        stats.budget_stops += 1
        return True

    def _process_event_legacy(self, event: Event, stats: ExecutionStats) -> None:
        stats.events_processed += 1
        source = event.source
        current_task = self.assignment.module_of(source)
        stats.record_activation(current_task, self.cost.activation_cycles)
        self._fire_legacy(source, stats)
        firings = 1
        while True:
            candidates = self._data_enabled(event.choices)
            # never re-fire source transitions spontaneously: they are
            # driven by the environment, one firing per event.
            candidates = [c for c in candidates if self.net.preset(c)]
            if not candidates:
                break
            transition = candidates[0]
            task = self.assignment.module_of(transition)
            if task != current_task:
                # inter-task message: send + receive + activation of target
                stats.record_queue(2 * self.cost.queue_op_cycles)
                stats.record_activation(task, self.cost.activation_cycles)
                current_task = task
            self._fire_legacy(transition, stats)
            firings += 1
            if firings > self.max_firings_per_event and self._over_budget(stats):
                break

    def _fire_legacy(self, transition: str, stats: ExecutionStats) -> None:
        self._legacy_marking = self.net.fire(transition, self._legacy_marking)
        cost = self.net.transition(transition).cost * self.cost.transition_cycles
        # every transition pays a dispatch test, mirroring the generated
        # code's control tests
        cost += self.cost.test_cycles
        stats.record_body(cost, [transition])
        if self.timing is not None:
            stats.record_delay(self.timing.ticks_of(transition))

    def _process_event_compiled(self, event: Event, stats: ExecutionStats) -> None:
        cnet = self._cnet
        stats.events_processed += 1
        source = event.source
        current_task = self.assignment.module_of(source)
        stats.record_activation(current_task, self.cost.activation_cycles)
        self._fire_compiled(cnet.transition_id(source), stats, check=True)
        firings = 1
        resolved = self._resolve_choices(event.choices)
        while True:
            t_id = self._first_candidate(resolved)
            if t_id is None:
                break
            task = self.assignment.module_of(cnet.transitions[t_id])
            if task != current_task:
                stats.record_queue(2 * self.cost.queue_op_cycles)
                stats.record_activation(task, self.cost.activation_cycles)
                current_task = task
            self._fire_compiled(t_id, stats, check=False)
            firings += 1
            if firings > self.max_firings_per_event and self._over_budget(stats):
                break

    def _resolve_choices(
        self, choices: Mapping[str, str]
    ) -> Optional[Dict[int, int]]:
        """Translate an event's ``{place: transition}`` resolutions to ids.

        A resolution naming an unknown transition maps to ``-1`` (no
        transition id matches, so every successor of the place is
        deselected — the legacy string-comparison behaviour).  Places the
        net does not have, or that are not choice places, are ignored,
        exactly as the legacy filter ignores them.
        """
        if not choices:
            return None
        cnet = self._cnet
        resolved: Dict[int, int] = {}
        for place, chosen in choices.items():
            p_id = cnet.place_index.get(place)
            if p_id is not None and p_id in self._choice_place_ids:
                resolved[p_id] = cnet.transition_index.get(chosen, -1)
        return resolved or None

    def _first_candidate(self, resolved: Optional[Dict[int, int]]) -> Optional[int]:
        """First data-enabled non-source transition id, in insertion order."""
        has_preset = self._has_preset
        choice_preset = self._choice_preset
        for t_id in self._cnet.enabled_transitions(self._vector):
            if not has_preset[t_id]:
                continue
            if resolved:
                selected = True
                for p_id in choice_preset[t_id]:
                    chosen = resolved.get(p_id)
                    if chosen is not None and chosen != t_id:
                        selected = False
                        break
                if not selected:
                    continue
            return t_id
        return None

    def _fire_compiled(
        self, t_id: int, stats: ExecutionStats, check: bool
    ) -> None:
        cnet = self._cnet
        vector = self._vector
        if check and not cnet.is_enabled(t_id, vector):
            raise NotEnabledError(
                f"transition {cnet.transitions[t_id]!r} is not enabled "
                f"in marking {cnet.marking_from_tuple(vector)}"
            )
        for p_id, delta in cnet.delta_lists[t_id]:
            vector[p_id] += delta
        stats.record_body(self._fire_cycles[t_id], (cnet.transitions[t_id],))
        if self.timing is not None:
            stats.record_delay(self._tick_table[t_id])

    def run(self, events: Sequence[Event]) -> ExecutionStats:
        stats = ExecutionStats()
        for event in sorted(events, key=lambda e: e.time):
            self.process_event(event, stats)
        return stats
