"""A minimal Real-Time Operating System model.

The paper's synthesized tasks "are invoked at run-time by the RTOS either
by interrupt or polling"; the RTOS itself is out of the paper's scope but
its activation overhead is what makes implementations with more tasks
slower and larger (Table I).  This module provides that executive: tasks
are registered against the input events that trigger them, events are
dispatched in time order, and every activation is charged the cost
model's activation overhead on top of the cycles reported by the task
body itself.

The executive takes the same ``engine="compiled"`` (default) /
``engine="legacy"`` switch as the rest of the stack and forwards it to
the IR interpreter: ``"compiled"`` executes the task bodies in their
lowered integer-opcode form, ``"legacy"`` tree-walks the IR statement
objects directly.  Both engines charge identical cycles
(`tests/test_runtime_compiled_differential.py`).  ``engine="native"``
runs the task bodies as compiled C (:mod:`repro.codegen.native`) with
the same cycle charges, falling back to ``"compiled"`` with a warning
when no C compiler is available.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Mapping, Optional, Sequence

from typing import TYPE_CHECKING

from ..petrinet.compiled import ENGINE_COMPILED
from .cost import CostModel
from .events import Event

if TYPE_CHECKING:  # pragma: no cover - import for type checkers only
    from ..codegen.ir import Program


@dataclass
class ExecutionStats:
    """Aggregate statistics of a simulated run.

    Attributes
    ----------
    total_cycles:
        Total clock cycles, including task bodies and all overheads.
    activation_cycles / body_cycles / queue_cycles:
        Breakdown of the total into RTOS activation overhead, task body
        work, and inter-task queue traffic.
    activations:
        Number of activations per task.
    firings:
        Number of firings per transition across the whole run.
    events_processed:
        Number of input events dispatched.
    budget_stops:
        Number of events abandoned by the ``on_budget="stop"`` policy of
        the reactive/fleet simulators (always 0 under ``"error"``).
    delay_ticks:
        Total timed firing delay charged by a
        :class:`~repro.runtime.stochastic.TimingModel` (always 0 for
        untimed runs).  Ticks are a separate axis from cycles: cycles
        model the cost structure the paper measures, ticks the timed
        workload realism layered on top.
    """

    total_cycles: int = 0
    activation_cycles: int = 0
    body_cycles: int = 0
    queue_cycles: int = 0
    activations: Dict[str, int] = field(default_factory=dict)
    firings: Dict[str, int] = field(default_factory=dict)
    events_processed: int = 0
    budget_stops: int = 0
    delay_ticks: int = 0

    def record_activation(self, task: str, overhead: int) -> None:
        self.activations[task] = self.activations.get(task, 0) + 1
        self.activation_cycles += overhead
        self.total_cycles += overhead

    def record_body(self, cycles: int, fired: Iterable[str]) -> None:
        self.body_cycles += cycles
        self.total_cycles += cycles
        for transition in fired:
            self.firings[transition] = self.firings.get(transition, 0) + 1

    def record_queue(self, cycles: int) -> None:
        self.queue_cycles += cycles
        self.total_cycles += cycles

    def record_delay(self, ticks: int) -> None:
        self.delay_ticks += ticks

    def merge(self, other: "ExecutionStats") -> None:
        """Accumulate ``other`` into this stats object (fleet aggregation)."""
        self.total_cycles += other.total_cycles
        self.activation_cycles += other.activation_cycles
        self.body_cycles += other.body_cycles
        self.queue_cycles += other.queue_cycles
        self.events_processed += other.events_processed
        self.budget_stops += other.budget_stops
        self.delay_ticks += other.delay_ticks
        for task, count in other.activations.items():
            self.activations[task] = self.activations.get(task, 0) + count
        for transition, count in other.firings.items():
            self.firings[transition] = self.firings.get(transition, 0) + count

    @property
    def total_activations(self) -> int:
        return sum(self.activations.values())

    def describe(self) -> str:
        lines = [
            f"events processed : {self.events_processed}",
            f"total cycles     : {self.total_cycles}",
            f"  task bodies    : {self.body_cycles}",
            f"  activations    : {self.activation_cycles} "
            f"({self.total_activations} activations)",
            f"  queue traffic  : {self.queue_cycles}",
        ]
        if self.budget_stops:
            lines.append(f"  budget stops   : {self.budget_stops}")
        if self.delay_ticks:
            lines.append(f"  delay ticks    : {self.delay_ticks}")
        for task, count in sorted(self.activations.items()):
            lines.append(f"  activations[{task}] = {count}")
        return "\n".join(lines)


class RTOS:
    """Event-driven executive for a quasi-statically scheduled program.

    Each task of the program is triggered by its source transitions; the
    executive dispatches the merged event stream in time order, charging
    one activation per event plus the cycles reported by the task body.

    ``engine`` selects how the task bodies execute: ``"compiled"``
    (default) runs the lowered integer-opcode form, ``"legacy"``
    tree-walks the IR statements, ``"native"`` runs the compiled
    shared library; see
    :class:`~repro.codegen.interpreter.TaskExecutor`.
    """

    def __init__(
        self,
        program: "Program",
        cost_model: Optional[CostModel] = None,
        engine: str = ENGINE_COMPILED,
    ) -> None:
        # imported here to keep repro.runtime importable without pulling in
        # repro.codegen (which itself depends on repro.runtime.cost)
        from ..codegen.interpreter import ProgramExecutor

        self.cost = cost_model or CostModel()
        self.engine = engine
        self.executor = ProgramExecutor(program, self.cost, engine=engine)
        self.program = program

    def reset(self) -> None:
        self.executor.reset()

    def run(self, events: Sequence[Event]) -> ExecutionStats:
        """Dispatch ``events`` (already time-ordered or not) and return stats."""
        from ..codegen.interpreter import make_resolver

        stats = ExecutionStats()
        activation_cycles = self.cost.activation_cycles
        task_for_source = self.executor.task_for_source
        for event in sorted(events, key=lambda e: e.time):
            stats.events_processed += 1
            task_executor = task_for_source(event.source)
            stats.record_activation(task_executor.task.name, activation_cycles)
            resolver = make_resolver(dict(event.choices))
            result = task_executor.activate(resolver)
            stats.record_body(result.cycles, result.fired)
        return stats

    def run_many(
        self, scenarios: Sequence[Sequence[Event]], reset_between: bool = True
    ) -> List[ExecutionStats]:
        """Run several event scenarios on the same synthesized program.

        The program is compiled to its executable form once (at RTOS
        construction); each scenario then only pays the dispatch loop,
        which is what makes large scenario fan-outs affordable.  With
        ``reset_between`` (the default) every scenario starts from the
        initial counter state, so the per-scenario stats are independent.
        """
        results: List[ExecutionStats] = []
        for events in scenarios:
            if reset_between:
                self.reset()
            results.append(self.run(events))
        return results
