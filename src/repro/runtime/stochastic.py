"""Timed firing delays and weighted stochastic choice for the runtime.

The paper's target systems are *timed*: firing a transition models a
computation that takes real time, and the data-dependent choices of the
specification resolve with application-specific (not uniform) odds.
This module adds both dimensions to the reactive/fleet runtime while
keeping every execution path bit-reproducible:

* :class:`TimingModel` charges an **integer tick** delay per transition
  firing.  Ticks are integers on purpose — the fleet kernel accumulates
  them either per firing (direct loop) or as one ``fired @ ticks``
  matmul per memoized cascade, and integer arithmetic makes the two
  orders byte-identical, which the differential suites pin.  Use
  :meth:`TimingModel.sampled` for a seeded random assignment or
  :meth:`TimingModel.constant` for a uniform one.

* :class:`StochasticChoicePolicy` carries **weighted** branch odds per
  choice place.  Resolution stays at the stream boundary (events carry
  their resolutions, exactly as before), so the engines — compiled,
  legacy, memoized, direct, sharded — never see randomness: they
  receive the same resolved events and must produce the same bytes.

Both are seeded through :class:`random.Random` with *string* seeds over
*sorted* names, so results are identical across processes regardless of
``PYTHONHASHSEED`` (`tests/test_stochastic_determinism.py` pins this).
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Sequence, Union

import numpy as np

from ..petrinet import PetriNet
from ..petrinet.compiled import CompiledNet
from .events import ChoiceSampler, Event, with_choices

#: Timing specs accepted by :func:`parse_timing` (and the ``--timing``
#: flag of ``repro-qss serve``): ``none``, ``fixed:N``,
#: ``uniform:LOW-HIGH``.
TIMING_SPECS = ("none", "fixed:N", "uniform:LOW-HIGH")


def _named(net: Union[PetriNet, CompiledNet]) -> PetriNet:
    return net.decompile() if isinstance(net, CompiledNet) else net


def _transition_names(net: Union[PetriNet, CompiledNet]) -> List[str]:
    if isinstance(net, CompiledNet):
        return list(net.transitions)
    return list(net.transition_names)


@dataclass(frozen=True)
class TimingModel:
    """Integer tick delay charged per transition firing.

    Attributes
    ----------
    transition_ticks:
        ``{transition name: ticks per firing}``; transitions absent from
        the mapping charge :attr:`default_ticks`.
    default_ticks:
        Delay of unlisted transitions (0 keeps them free).
    """

    transition_ticks: Mapping[str, int] = field(default_factory=dict)
    default_ticks: int = 0

    def __post_init__(self) -> None:
        for name, ticks in self.transition_ticks.items():
            if int(ticks) != ticks or ticks < 0:
                raise ValueError(
                    f"tick delay of transition {name!r} must be a "
                    f"non-negative integer, got {ticks!r}"
                )
        if int(self.default_ticks) != self.default_ticks or self.default_ticks < 0:
            raise ValueError(
                f"default_ticks must be a non-negative integer, got "
                f"{self.default_ticks!r}"
            )

    def ticks_of(self, transition: str) -> int:
        return int(self.transition_ticks.get(transition, self.default_ticks))

    def tick_vector(self, cnet: CompiledNet) -> np.ndarray:
        """Per-transition-id tick column for the fleet kernel."""
        return np.array(
            [self.ticks_of(name) for name in cnet.transitions], dtype=np.int64
        )

    @classmethod
    def constant(cls, ticks: int) -> "TimingModel":
        """Every firing takes ``ticks``."""
        return cls(transition_ticks={}, default_ticks=ticks)

    @classmethod
    def sampled(
        cls,
        net: Union[PetriNet, CompiledNet],
        seed: int = 0,
        low: int = 1,
        high: int = 8,
    ) -> "TimingModel":
        """Seeded random integer delay in ``[low, high]`` per transition.

        The draw iterates transitions in *sorted name order* with a
        string-seeded :class:`random.Random`, so the model is identical
        across processes and ``PYTHONHASHSEED`` values.
        """
        if low < 0 or high < low:
            raise ValueError(
                f"need 0 <= low <= high, got low={low!r} high={high!r}"
            )
        rng = random.Random(f"timing:{seed}")
        ticks = {
            name: rng.randint(low, high)
            for name in sorted(_transition_names(net))
        }
        return cls(transition_ticks=ticks, default_ticks=0)


def parse_timing(
    spec: str, net: Union[PetriNet, CompiledNet], seed: int = 0
) -> Optional[TimingModel]:
    """Parse a ``--timing`` spec string into a :class:`TimingModel`.

    ``"none"`` means untimed (returns ``None``), ``"fixed:N"`` charges
    ``N`` ticks per firing, ``"uniform:LOW-HIGH"`` draws a seeded random
    delay in ``[LOW, HIGH]`` per transition.
    """
    if spec == "none":
        return None
    kind, _, rest = spec.partition(":")
    if kind == "fixed" and rest:
        try:
            return TimingModel.constant(int(rest))
        except ValueError:
            pass
    elif kind == "uniform" and rest:
        low_s, sep, high_s = rest.partition("-")
        if sep:
            try:
                return TimingModel.sampled(
                    net, seed=seed, low=int(low_s), high=int(high_s)
                )
            except ValueError:
                pass
    raise ValueError(
        f"bad timing spec {spec!r}; expected one of {', '.join(TIMING_SPECS)} "
        f"(e.g. 'fixed:3' or 'uniform:1-8')"
    )


@dataclass(frozen=True)
class StochasticChoicePolicy:
    """Weighted branch odds per choice place.

    Attributes
    ----------
    weights:
        ``{choice place: {successor transition: weight}}``; weights are
        relative (the samplers normalize), must be positive.
    """

    weights: Mapping[str, Mapping[str, float]]

    def __post_init__(self) -> None:
        for place, branches in self.weights.items():
            if not branches:
                raise ValueError(f"choice place {place!r} has no branches")
            for transition, weight in branches.items():
                if not weight > 0:
                    raise ValueError(
                        f"weight of {place!r} -> {transition!r} must be "
                        f"positive, got {weight!r}"
                    )

    @property
    def probabilities(self) -> Dict[str, Dict[str, float]]:
        """The weights normalized to sum to 1 per choice place."""
        normalized: Dict[str, Dict[str, float]] = {}
        for place, branches in self.weights.items():
            total = sum(branches.values())
            normalized[place] = {
                transition: weight / total
                for transition, weight in branches.items()
            }
        return normalized

    def resolver(
        self,
        seed: int = 0,
        per_source: Optional[Mapping[str, Sequence[str]]] = None,
    ) -> ChoiceSampler:
        """A seeded :class:`ChoiceSampler` drawing from these weights."""
        return ChoiceSampler(self.probabilities, seed=seed, per_source=per_source)

    def resolve(self, events: Sequence[Event], seed: int = 0) -> List[Event]:
        """Copy of ``events`` with choices drawn from these weights."""
        return with_choices(events, self.resolver(seed))

    @classmethod
    def uniform(cls, net: Union[PetriNet, CompiledNet]) -> "StochasticChoicePolicy":
        """Equal odds on every branch (the historical synthetic default)."""
        named = _named(net)
        return cls(
            weights={
                place: {t: 1.0 for t in named.postset_names(place)}
                for place in named.choice_places()
            }
        )

    @classmethod
    def sampled(
        cls,
        net: Union[PetriNet, CompiledNet],
        seed: int = 0,
        low: float = 0.25,
        high: float = 4.0,
    ) -> "StochasticChoicePolicy":
        """Seeded random weight in ``[low, high]`` per branch.

        Iterates choice places and their successors in *sorted name
        order* with a string-seeded :class:`random.Random` — identical
        across processes and ``PYTHONHASHSEED`` values.
        """
        if not 0 < low <= high:
            raise ValueError(
                f"need 0 < low <= high, got low={low!r} high={high!r}"
            )
        named = _named(net)
        rng = random.Random(f"choice:{seed}")
        weights: Dict[str, Dict[str, float]] = {}
        for place in sorted(named.choice_places()):
            weights[place] = {
                t: rng.uniform(low, high)
                for t in sorted(named.postset_names(place))
            }
        return cls(weights=weights)
