"""Cycle cost model for the simulated execution target.

The paper measures clock cycles of the generated C programs on an
embedded processor; this reproduction replaces that target with a
deterministic cost model charged by the IR interpreter and the RTOS
simulator.  The default constants are loosely calibrated so that a
transition body dominates a control test, a counter update is cheap, and
a task activation (context switch plus dispatcher work) costs roughly an
order of magnitude more than a single transition — the relationship that
makes implementations with more tasks slower, which is the effect
Table I demonstrates.

All experiments report the constants they use, and the overhead
sensitivity ablation (benchmarks/bench_ablation_overhead.py) sweeps the
activation cost to show how the QSS advantage varies with it.
"""

from __future__ import annotations

from dataclasses import dataclass, replace


@dataclass(frozen=True)
class CostModel:
    """Abstract clock-cycle costs of the simulated target.

    Attributes
    ----------
    transition_cycles:
        Cycles per unit of transition cost (a transition with
        ``cost == c`` charges ``c * transition_cycles``).
    test_cycles:
        Cycles per control test (choice test, counter guard evaluation).
    counter_cycles:
        Cycles per counting-variable update.
    call_cycles:
        Cycles per fragment call (function-call overhead of shared code).
    activation_cycles:
        Cycles per task activation: RTOS dispatch plus context switch.
    queue_op_cycles:
        Cycles per inter-task message enqueue/dequeue (only paid by
        multi-task partitionings that communicate through queues).
    idle_tick_cycles:
        Cycles burnt by the RTOS when an event arrives but no task needs
        to run (e.g. a Tick with an empty system in some baselines).
    """

    transition_cycles: int = 40
    test_cycles: int = 4
    counter_cycles: int = 2
    call_cycles: int = 6
    activation_cycles: int = 180
    queue_op_cycles: int = 80
    idle_tick_cycles: int = 10

    def with_activation(self, activation_cycles: int) -> "CostModel":
        """A copy of the model with a different task-activation cost."""
        return replace(self, activation_cycles=activation_cycles)

    def with_queue_cost(self, queue_op_cycles: int) -> "CostModel":
        """A copy of the model with a different queue-operation cost."""
        return replace(self, queue_op_cycles=queue_op_cycles)


#: Cost model used by the Table I reproduction.
DEFAULT_COST_MODEL = CostModel()
