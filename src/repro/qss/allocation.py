"""T-allocations over Free-Choice Petri Nets.

Definition 3.3 of the paper: a T-allocation over an FCPN is a function
``alpha : P -> T`` that chooses exactly one successor of every place.
For non-choice places the function is forced (the unique successor); the
degrees of freedom are exactly the choice places, so a T-allocation is
represented here as a mapping ``{choice place: chosen transition}``.

The *allocation set* (the ``A1``/``A2`` sets of Figure 5) is the set of
transitions that survive the allocation: every transition except the
non-chosen successors of the choice places (source transitions, having
no predecessor place, are always kept).
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Dict, FrozenSet, Iterable, Iterator, List, Mapping, Optional, Tuple

from ..petrinet import PetriNet
from ..petrinet.exceptions import NotFreeChoiceError, UnknownNodeError
from ..petrinet.structure import is_free_choice


@dataclass(frozen=True)
class TAllocation:
    """A single T-allocation, identified by its choice resolutions.

    Attributes
    ----------
    choices:
        ``{choice place: chosen successor transition}``.  Only places with
        more than one successor appear; the allocation on all other
        places is implied.
    """

    choices: Tuple[Tuple[str, str], ...]

    @classmethod
    def from_mapping(cls, mapping: Mapping[str, str]) -> "TAllocation":
        return cls(choices=tuple(sorted(mapping.items())))

    @property
    def as_dict(self) -> Dict[str, str]:
        """``{choice place: chosen transition}``, built once per instance.

        ``chosen()`` and ``allocated_transitions()`` look this mapping up
        from the hot enumeration loop, so it is memoized on first access
        (``object.__setattr__`` is the frozen-dataclass equivalent of
        ``cached_property``; equality and hashing still consider only the
        ``choices`` field).  Callers must not mutate the returned dict.
        """
        try:
            return self._memo_as_dict  # type: ignore[attr-defined]
        except AttributeError:
            mapping = dict(self.choices)
            object.__setattr__(self, "_memo_as_dict", mapping)
            return mapping

    def chosen(self, place: str) -> Optional[str]:
        """The transition chosen at ``place``, or None if not a choice."""
        return self.as_dict.get(place)

    def allocated_transitions(self, net: PetriNet) -> FrozenSet[str]:
        """The allocation set: every transition except non-chosen conflict
        successors.  Matches the ``A1``/``A2`` sets of Figure 5."""
        excluded = set()
        mapping = self.as_dict
        for place, chosen in mapping.items():
            for successor in net.postset_names(place):
                if successor != chosen:
                    excluded.add(successor)
        return frozenset(t for t in net.transition_names if t not in excluded)

    def __str__(self) -> str:
        inner = ", ".join(f"{p}->{t}" for p, t in self.choices)
        return f"TAllocation({inner})"


def validate_allocation(net: PetriNet, allocation: TAllocation) -> None:
    """Raise if ``allocation`` is not a valid T-allocation of ``net``."""
    mapping = allocation.as_dict
    choice_places = set(net.choice_places())
    for place, transition in mapping.items():
        if not net.has_place(place):
            raise UnknownNodeError(f"unknown place {place!r}")
        if transition not in net.postset_names(place):
            raise ValueError(
                f"transition {transition!r} is not a successor of place {place!r}"
            )
    missing = choice_places - set(mapping)
    if missing:
        raise ValueError(
            f"allocation does not resolve choice places: {sorted(missing)}"
        )


def count_allocations(net: PetriNet) -> int:
    """The number of T-allocations (product of choice out-degrees)."""
    count = 1
    for place in net.choice_places():
        count *= len(net.postset_names(place))
    return count


def enumerate_allocations(
    net: PetriNet, require_free_choice: bool = True
) -> Iterator[TAllocation]:
    """Yield every T-allocation of ``net``.

    The number of allocations is the product of the out-degrees of the
    choice places — exponential in the number of choices, as the paper
    notes in its complexity discussion.  Iteration is lazy so callers can
    deduplicate the induced T-reductions on the fly.

    Raises
    ------
    NotFreeChoiceError
        If ``require_free_choice`` is True and the net is not free-choice
        (T-allocations are defined for any net, but the QSS theory is
        stated for FCPNs only).
    """
    if require_free_choice and not is_free_choice(net):
        raise NotFreeChoiceError(
            f"net {net.name!r} is not free-choice; quasi-static scheduling "
            "is defined for Free-Choice Petri Nets"
        )
    choice_places = net.choice_places()
    if not choice_places:
        yield TAllocation(choices=())
        return
    alternatives: List[List[Tuple[str, str]]] = [
        [(place, successor) for successor in net.postset_names(place)]
        for place in choice_places
    ]
    for combination in itertools.product(*alternatives):
        yield TAllocation(choices=tuple(sorted(combination)))
