"""Task partitioning from a valid schedule.

Section 4 of the paper: the synthesized software consists of "as many
fragments of C code (tasks) as the number of source transitions with
independent firing rate", because transitions with independent rates
cannot be quasi-statically scheduled together.  A task is composed only
of transitions with dependent firing rates, i.e. transitions belonging
to the same T-invariants as the task's source transition.

Given a valid schedule this module

* groups the source transitions into rate classes (by default every
  source transition is its own class — e.g. *Cell* and *Tick* in the ATM
  server — but rationally-related inputs can be grouped explicitly);
* assigns to each task the transitions appearing in T-invariants that
  contain one of its source transitions, across all T-reductions
  (transitions reachable from several inputs — shared code such as the
  WFQ module of the ATM server — appear in several tasks);
* extracts the per-task subnet used by the code generator.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List, Mapping, Optional, Sequence, Set, Tuple

from ..petrinet import PetriNet, t_invariants
from .schedule import ValidSchedule


@dataclass
class TaskDefinition:
    """A software task synthesized from the valid schedule.

    Attributes
    ----------
    name:
        Task name (derived from its triggering input).
    source_transitions:
        The input (source) transitions that trigger the task; they share
        a firing rate.
    transitions:
        All transitions executed by the task (the union of the supports
        of the T-invariants containing the task's sources).
    places:
        The places connecting those transitions (the task's buffers and
        counters).
    net:
        The task subnet (used by code generation).
    shared_transitions:
        Transitions that also belong to another task — the code patterns
        the paper shares between tasks via labels/gotos.
    """

    name: str
    source_transitions: Tuple[str, ...]
    transitions: FrozenSet[str]
    places: FrozenSet[str]
    net: PetriNet
    shared_transitions: FrozenSet[str] = frozenset()


@dataclass
class TaskPartition:
    """The complete task set of a synthesized implementation."""

    net: PetriNet
    tasks: List[TaskDefinition] = field(default_factory=list)

    @property
    def task_count(self) -> int:
        return len(self.tasks)

    def task_for_source(self, source: str) -> TaskDefinition:
        for task in self.tasks:
            if source in task.source_transitions:
                return task
        raise KeyError(f"no task triggered by source transition {source!r}")

    def describe(self) -> str:
        lines = [f"{self.task_count} task(s) for net {self.net.name!r}:"]
        for task in self.tasks:
            lines.append(
                f"  {task.name}: sources={list(task.source_transitions)}, "
                f"{len(task.transitions)} transitions"
                + (
                    f", shared={sorted(task.shared_transitions)}"
                    if task.shared_transitions
                    else ""
                )
            )
        return "\n".join(lines)


def _task_places(net: PetriNet, transitions: Set[str]) -> Set[str]:
    """Places with at least one arc to/from the task's transitions."""
    places: Set[str] = set()
    for transition in transitions:
        places.update(net.preset_names(transition))
        places.update(net.postset_names(transition))
    return places


def partition_tasks(
    schedule: ValidSchedule,
    rate_groups: Optional[Sequence[Sequence[str]]] = None,
    task_names: Optional[Mapping[str, str]] = None,
) -> TaskPartition:
    """Partition a valid schedule into tasks.

    Parameters
    ----------
    schedule:
        The valid schedule produced by :mod:`repro.qss.scheduler`.
    rate_groups:
        Groups of source transitions that share a firing rate (and hence
        can live in the same task).  Defaults to one group per source
        transition — the paper's lower bound of one task per independent
        input.
    task_names:
        Optional ``{first source of group: task name}`` mapping used to
        give tasks application-level names (e.g. ``cell_task``).
    """
    net = schedule.net
    sources = net.source_transitions()
    if rate_groups is None:
        groups: List[List[str]] = [[s] for s in sources]
    else:
        groups = [list(group) for group in rate_groups]
        grouped = {s for group in groups for s in group}
        for source in sources:
            if source not in grouped:
                groups.append([source])

    # Transitions per task: union over every cycle (i.e. every reduction)
    # of the supports of the T-invariants containing the task's sources.
    # The cycles already realize those invariants, so it is sufficient to
    # recompute the invariants on each reduction's transition set.
    membership: Dict[str, Set[str]] = {group[0]: set(group) for group in groups}
    for cycle in schedule.cycles:
        reduction_net = net.subnet(
            places=net.place_names,
            transitions=list(cycle.reduction_transitions),
            name=f"{net.name}_cycle",
        )
        invariants = t_invariants(reduction_net)
        for group in groups:
            key = group[0]
            for invariant in invariants:
                if any(source in invariant for source in group):
                    membership[key].update(invariant)

    # Transitions claimed by several tasks are the shared code patterns.
    claim_count: Dict[str, int] = {}
    for owned in membership.values():
        for transition in owned:
            claim_count[transition] = claim_count.get(transition, 0) + 1

    partition = TaskPartition(net=net)
    for group in groups:
        key = group[0]
        owned = membership[key]
        places = _task_places(net, owned)
        name = (task_names or {}).get(key, f"task_{key}")
        task_net = net.subnet(places=places, transitions=owned, name=name)
        shared = frozenset(t for t in owned if claim_count.get(t, 0) > 1)
        partition.tasks.append(
            TaskDefinition(
                name=name,
                source_transitions=tuple(group),
                transitions=frozenset(owned),
                places=frozenset(places),
                net=task_net,
                shared_transitions=shared,
            )
        )
    return partition


def minimum_task_count(net: PetriNet) -> int:
    """The paper's lower bound: one task per independent-rate input."""
    return len(net.source_transitions())
