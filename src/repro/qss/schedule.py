"""Schedule data structures: finite complete cycles and valid schedules.

A **finite complete cycle** is a firing sequence that returns the net to
its initial marking (Section 2).  A **valid schedule** (Definition 3.1)
is a set of finite complete cycles, one per resolution of the
non-deterministic choices (one per T-reduction), each containing at
least one occurrence of every source transition; it is the intermediate
representation from which C code is synthesized (Section 4).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List, Mapping, Optional, Sequence, Tuple

from ..petrinet import Marking, PetriNet, fire_sequence, is_finite_complete_cycle
from .allocation import TAllocation
from .reduction import TReduction


@dataclass(frozen=True)
class FiniteCompleteCycle:
    """One finite complete cycle of a valid schedule.

    Attributes
    ----------
    sequence:
        The transition firing order.
    firing_counts:
        ``{transition: number of firings}`` — a T-invariant of the net.
    allocation:
        The choice resolutions (T-allocation) this cycle corresponds to.
    reduction_transitions:
        The transitions of the T-reduction the cycle was scheduled on.
    """

    sequence: Tuple[str, ...]
    firing_counts: Tuple[Tuple[str, int], ...]
    allocation: TAllocation
    reduction_transitions: FrozenSet[str]

    @classmethod
    def from_sequence(
        cls,
        sequence: Sequence[str],
        allocation: TAllocation,
        reduction_transitions: Optional[FrozenSet[str]] = None,
    ) -> "FiniteCompleteCycle":
        counts: Dict[str, int] = {}
        for transition in sequence:
            counts[transition] = counts.get(transition, 0) + 1
        return cls(
            sequence=tuple(sequence),
            firing_counts=tuple(sorted(counts.items())),
            allocation=allocation,
            reduction_transitions=reduction_transitions
            or frozenset(counts),
        )

    @property
    def counts(self) -> Dict[str, int]:
        return dict(self.firing_counts)

    def contains(self, transition: str) -> bool:
        return transition in self.counts

    def __len__(self) -> int:
        return len(self.sequence)

    def __str__(self) -> str:
        return "(" + " ".join(self.sequence) + ")"


@dataclass
class ValidSchedule:
    """A valid schedule: one finite complete cycle per T-reduction.

    The schedule is "complete" in the paper's sense: a C implementation
    covering all run-time choice resolutions can be derived from it.
    """

    net: PetriNet
    cycles: List[FiniteCompleteCycle] = field(default_factory=list)

    @property
    def cycle_count(self) -> int:
        return len(self.cycles)

    def cycles_containing(self, transition: str) -> List[FiniteCompleteCycle]:
        return [cycle for cycle in self.cycles if cycle.contains(transition)]

    def transitions_used(self) -> FrozenSet[str]:
        used: set = set()
        for cycle in self.cycles:
            used.update(cycle.counts)
        return frozenset(used)

    def verify(self, marking: Optional[Marking] = None) -> bool:
        """Re-execute every cycle and confirm it is a finite complete cycle
        containing every source transition of the net."""
        sources = set(self.net.source_transitions())
        start = marking if marking is not None else self.net.initial_marking
        for cycle in self.cycles:
            if not is_finite_complete_cycle(self.net, cycle.sequence, start):
                return False
            if not sources <= set(cycle.counts):
                return False
        return True

    def max_buffer_bounds(self, marking: Optional[Marking] = None) -> Dict[str, int]:
        """Maximum token count per place observed while executing each cycle
        from the initial marking — the static buffer sizes needed when the
        schedule is followed."""
        start = marking if marking is not None else self.net.initial_marking
        bounds: Dict[str, int] = {p: start[p] for p in self.net.place_names}
        for cycle in self.cycles:
            current = start
            for transition in cycle.sequence:
                current = self.net.fire(transition, current)
                for place, count in current.tokens.items():
                    if count > bounds.get(place, 0):
                        bounds[place] = count
        return bounds

    def describe(self) -> str:
        """Human readable multi-line description of the schedule."""
        lines = [
            f"valid schedule of net {self.net.name!r}: {self.cycle_count} "
            "finite complete cycle(s)"
        ]
        for index, cycle in enumerate(self.cycles):
            lines.append(f"  [{index}] {cycle}  choices: {cycle.allocation}")
        return "\n".join(lines)
