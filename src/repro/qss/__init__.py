"""Quasi-Static Scheduling of Free-Choice Petri Nets (the paper's core).

Typical use::

    from repro.qss import compute_valid_schedule, partition_tasks

    schedule = compute_valid_schedule(net)      # raises if unschedulable
    tasks = partition_tasks(schedule)           # one task per input rate
"""

from .allocation import (
    TAllocation,
    count_allocations,
    enumerate_allocations,
    validate_allocation,
)
from .compiled_reduction import (
    CompiledReduction,
    QSSContext,
    enumerate_compiled_reductions,
    iter_compiled_reductions,
)
from .reduction import (
    ReductionStep,
    TReduction,
    assert_conflict_free,
    count_distinct_reductions,
    enumerate_reductions,
    reduce_net,
)
from .schedulability import (
    MAX_CYCLE_SCALE,
    ReductionVerdict,
    check_all_reductions,
    check_compiled_reduction,
    check_reduction,
    covering_counts,
)
from .schedule import FiniteCompleteCycle, ValidSchedule
from .scheduler import (
    QuasiStaticScheduler,
    SchedulabilityReport,
    analyse,
    compute_valid_schedule,
    is_schedulable,
)
from .tasks import TaskDefinition, TaskPartition, minimum_task_count, partition_tasks

__all__ = [
    "TAllocation",
    "enumerate_allocations",
    "count_allocations",
    "validate_allocation",
    "TReduction",
    "ReductionStep",
    "reduce_net",
    "enumerate_reductions",
    "count_distinct_reductions",
    "assert_conflict_free",
    "CompiledReduction",
    "QSSContext",
    "iter_compiled_reductions",
    "enumerate_compiled_reductions",
    "ReductionVerdict",
    "check_reduction",
    "check_compiled_reduction",
    "check_all_reductions",
    "covering_counts",
    "MAX_CYCLE_SCALE",
    "FiniteCompleteCycle",
    "ValidSchedule",
    "SchedulabilityReport",
    "analyse",
    "is_schedulable",
    "compute_valid_schedule",
    "QuasiStaticScheduler",
    "TaskDefinition",
    "TaskPartition",
    "partition_tasks",
    "minimum_task_count",
]
