"""Schedulability of T-reductions (Definition 3.5).

A T-reduction is schedulable when

1. it is *consistent* (it admits T-invariants whose supports cover every
   transition of the reduction),
2. for every source transition of the original net it has a T-invariant
   containing that source transition, and
3. a firing sequence realizing those invariants can actually be executed
   from the initial marking without deadlock (verified by simulation, the
   generalization of Lee's SDF result).

Theorem 3.1: the FCPN has a valid schedule iff *every* T-reduction is
schedulable.  This module implements the per-reduction check and returns
rich diagnostics so that a designer can see exactly why a specification
fails.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from ..petrinet import (
    ENGINE_COMPILED,
    ENGINE_LEGACY,
    SEARCH_ENGINES,
    Marking,
    PetriNet,
    combine_invariants,
    find_finite_complete_cycle,
    t_invariants,
    validate_engine,
)
from .compiled_reduction import CompiledReduction
from .reduction import TReduction

#: How many integer multiples of the covering invariant are attempted when
#: searching for an executable ordering before declaring deadlock.
MAX_CYCLE_SCALE = 3


@dataclass
class ReductionVerdict:
    """Outcome of the schedulability check for one T-reduction.

    Attributes
    ----------
    reduction:
        The T-reduction that was checked.
    schedulable:
        The overall verdict (all three conditions hold).
    consistent:
        Condition (1): the reduction's transitions are covered by
        T-invariants.
    sources_covered:
        Condition (2): every source transition of the original net lies in
        some T-invariant of the reduction.
    cycle:
        Condition (3): a finite complete cycle realizing the covering
        invariant, when one exists.
    uncovered_transitions / uncovered_sources / source_places:
        Diagnostics explaining a negative verdict.
    invariants:
        The minimal T-invariants of the reduction (kept for reporting and
        for task partitioning).
    """

    reduction: "TReduction | CompiledReduction"
    schedulable: bool
    consistent: bool
    sources_covered: bool
    cycle: Optional[List[str]] = None
    uncovered_transitions: List[str] = field(default_factory=list)
    uncovered_sources: List[str] = field(default_factory=list)
    source_places: List[str] = field(default_factory=list)
    deadlocked: bool = False
    invariants: List[Dict[str, int]] = field(default_factory=list)

    def explain(self) -> str:
        """One-paragraph explanation of the verdict for the designer."""
        if self.schedulable:
            return (
                f"reduction {self.reduction.allocation} is schedulable; "
                f"cycle length {len(self.cycle or [])}"
            )
        reasons = []
        if not self.consistent:
            reasons.append(
                "inconsistent (no T-invariant covers transitions "
                f"{self.uncovered_transitions})"
            )
        if not self.sources_covered:
            reasons.append(
                f"source transitions {self.uncovered_sources} are not part "
                "of any T-invariant"
            )
        if self.deadlocked:
            reasons.append(
                "the covering T-invariant cannot be ordered into a firing "
                "sequence from the initial marking (deadlock)"
            )
        if self.source_places:
            reasons.append(
                f"the reduction keeps source places {self.source_places} "
                "with no producer, so repeated execution would need "
                "infinitely many tokens from a removed branch"
            )
        return (
            f"reduction {self.reduction.allocation} is NOT schedulable: "
            + "; ".join(reasons)
        )


def covering_counts(
    needed: Sequence[str],
    invariants: List[Dict[str, int]],
    sources: Sequence[str],
) -> Dict[str, int]:
    """Firing counts combining enough minimal invariants to cover every
    transition in ``needed`` and every source transition of the net.

    Shared by the legacy per-net and the mask-based pipelines; the
    invariant selection (and therefore the resulting count-dict
    insertion order, which fixes the DFS candidate order) is identical
    in both.
    """
    needed_set = set(needed)
    chosen: List[Dict[str, int]] = []
    covered: set = set()
    # First make sure each source transition is covered, then the rest.
    for source in sources:
        if source in covered:
            continue
        for invariant in invariants:
            if source in invariant:
                chosen.append(invariant)
                covered.update(invariant)
                break
    for invariant in invariants:
        if not set(invariant) <= covered:
            chosen.append(invariant)
            covered.update(invariant)
        if covered >= needed_set:
            break
    return combine_invariants(chosen)


def _definition_35_verdict(
    reduction,
    needed: Sequence[str],
    sources: Sequence[str],
    invariants: List[Dict[str, int]],
    source_places: List[str],
    find_cycle,
) -> ReductionVerdict:
    """The engine-independent skeleton of the Definition 3.5 check.

    ``needed`` are the reduction's transitions, ``sources`` the original
    net's source transitions, ``invariants`` the reduction's minimal
    T-invariants, and ``find_cycle(scaled_counts)`` the engine-specific
    search for a finite complete cycle realizing the counts.  Both
    :func:`check_reduction` and :func:`check_compiled_reduction` build
    their verdicts through this one body, so the coverage rules, the
    ``MAX_CYCLE_SCALE`` retry loop and the diagnostics cannot drift
    apart between the pipelines.
    """
    covered: set = set()
    for invariant in invariants:
        covered.update(invariant)
    uncovered = [t for t in needed if t not in covered]
    consistent = not uncovered

    uncovered_sources = [
        s for s in sources if not any(s in invariant for invariant in invariants)
    ]
    sources_covered = not uncovered_sources

    verdict = ReductionVerdict(
        reduction=reduction,
        schedulable=False,
        consistent=consistent,
        sources_covered=sources_covered,
        uncovered_transitions=uncovered,
        uncovered_sources=uncovered_sources,
        source_places=source_places,
        invariants=invariants,
    )
    if not (consistent and sources_covered):
        return verdict

    counts = covering_counts(needed, invariants, sources)
    for scale in range(1, MAX_CYCLE_SCALE + 1):
        scaled = {t: c * scale for t, c in counts.items()}
        cycle = find_cycle(scaled)
        if cycle is not None:
            verdict.cycle = cycle
            verdict.schedulable = True
            return verdict
    verdict.deadlocked = True
    return verdict


def check_reduction(
    net: PetriNet,
    reduction: TReduction,
    marking: Optional[Marking] = None,
    engine: str = ENGINE_COMPILED,
) -> ReductionVerdict:
    """Check Definition 3.5 for one T-reduction of ``net``.

    With the default ``engine="compiled"`` the deadlock-freedom
    simulation of condition (3) runs on the reduction's cached
    :class:`~repro.petrinet.compiled.CompiledNet` view — compiled once
    per reduction and reused across the ``MAX_CYCLE_SCALE`` attempts and
    across repeated checks during the allocation enumeration.
    ``engine="frontier"`` runs the cycle search as a batched BFS over
    ``(marking, remaining counts)`` frontiers on the same compiled view;
    verdicts agree with the other engines (the searches are equally
    complete), though the cycle found may be a different valid
    interleaving.
    """
    validate_engine(engine, SEARCH_ENGINES)
    reduced = reduction.net
    start = marking if marking is not None else reduced.initial_marking
    target = reduced if engine == ENGINE_LEGACY else reduction.compiled
    return _definition_35_verdict(
        reduction,
        needed=reduced.transition_names,
        sources=net.source_transitions(),
        invariants=t_invariants(reduced),
        source_places=reduction.source_places(),
        find_cycle=lambda scaled: find_finite_complete_cycle(
            target, scaled, start, engine=engine
        ),
    )


def check_compiled_reduction(
    reduction: CompiledReduction,
    marking: Optional[Marking] = None,
    engine: str = ENGINE_COMPILED,
) -> ReductionVerdict:
    """Check Definition 3.5 for one mask-based T-reduction.

    The mask pipeline's counterpart of :func:`check_reduction`: the
    T-invariants come from the parent incidence submatrix (memoized on
    the :class:`~repro.qss.compiled_reduction.QSSContext`), and the
    deadlock-freedom simulation of condition (3) runs on parent marking
    tuples filtered through the reduction masks — no per-reduction net
    and no per-reduction compilation exist at any point.  Produces
    verdicts (including cycles and diagnostics) identical to the legacy
    check for the same reduction.

    ``engine`` selects the condition (3) cycle search: the sequential
    DFS (``"compiled"``, default) or the batched frontier BFS on the
    reduction's masked incidence submatrix (``"frontier"``); verdicts
    are identical either way.
    """
    start = (
        reduction.restrict_marking(marking)
        if marking is not None
        else reduction.initial
    )
    return _definition_35_verdict(
        reduction,
        needed=reduction.transition_names,
        sources=reduction.context.source_transition_names,
        invariants=reduction.t_invariants(),
        source_places=reduction.source_places(),
        find_cycle=lambda scaled: reduction.find_finite_complete_cycle(
            scaled, start, engine=engine
        ),
    )


def check_all_reductions(
    net: PetriNet,
    reductions: Sequence[TReduction],
    marking: Optional[Marking] = None,
    engine: str = ENGINE_COMPILED,
) -> List[ReductionVerdict]:
    """Check every reduction; the net is schedulable iff all verdicts are."""
    return [
        check_reduction(net, reduction, marking, engine=engine)
        for reduction in reductions
    ]
