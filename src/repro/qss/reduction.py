"""T-reductions: the conflict-free components induced by a T-allocation.

Definition 3.4 and the Reduction Algorithm of Section 3 (modified from
Hack's MG-decomposition to handle source and sink transitions): given a
T-allocation, remove every unallocated transition and then propagate the
removal through the net, keeping a place only when it still has a
producer (condition b.i) or when its consumer is fed from elsewhere by a
non-source place (condition b.ii — this deliberately leaves behind
"source places" with no producer so that an inconsistent reduction is
detected later, as in Figure 7).

The resulting subnet is conflict-free by construction (every surviving
place has at most one surviving successor), so it can be scheduled with
the static SDF techniques of Section 2.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import cached_property
from typing import Dict, FrozenSet, Iterable, Iterator, List, Optional, Set, Tuple

from ..petrinet import (
    ENGINE_COMPILED,
    ENGINE_LEGACY,
    SEARCH_ENGINES,
    CompiledNet,
    PetriNet,
    validate_engine,
)
from ..petrinet.structure import is_conflict_free
from .allocation import TAllocation, enumerate_allocations


@dataclass(frozen=True)
class TReduction:
    """A T-reduction: the conflict-free subnet active under one allocation.

    Attributes
    ----------
    allocation:
        The T-allocation that induced this reduction.
    net:
        The reduced net (a subnet of the original, with the original
        initial marking restricted to the surviving places).
    removed_transitions / removed_places:
        The nodes removed by the Reduction Algorithm, recorded for
        diagnostics and for the step-by-step trace benchmark (Figure 6).
    """

    allocation: TAllocation
    net: PetriNet
    removed_transitions: Tuple[str, ...]
    removed_places: Tuple[str, ...]

    @cached_property
    def compiled(self) -> CompiledNet:
        """The integer-indexed compiled view of the reduced net.

        Compiled lazily and cached on the reduction, so the
        schedulability check (which simulates the reduction up to
        ``MAX_CYCLE_SCALE`` times) and any later consumers share one
        compilation per reduction across the allocation enumeration.
        """
        return self.net.compile()

    @property
    def transition_set(self) -> FrozenSet[str]:
        return frozenset(self.net.transition_names)

    @property
    def place_set(self) -> FrozenSet[str]:
        return frozenset(self.net.place_names)

    def signature(self) -> Tuple[FrozenSet[str], FrozenSet[str]]:
        """A hashable identity used to deduplicate equal reductions
        produced by different allocations."""
        return (self.transition_set, self.place_set)

    def source_places(self) -> List[str]:
        """Places of the reduction left without any producer.

        A non-empty result is the structural symptom of Figure 7: the
        reduction can only fire finitely often through those places.
        """
        return [
            p for p in self.net.place_names if not self.net.preset(p)
        ]


@dataclass
class ReductionStep:
    """One step of the Reduction Algorithm trace (for Figure 6)."""

    action: str
    node: str
    reason: str


def reduce_net(
    net: PetriNet,
    allocation: TAllocation,
    trace: Optional[List[ReductionStep]] = None,
) -> TReduction:
    """Apply the Reduction Algorithm and return the T-reduction.

    Parameters
    ----------
    net:
        The original free-choice net.
    allocation:
        The T-allocation to reduce by.
    trace:
        Optional list that receives a :class:`ReductionStep` per removal,
        in order — used to regenerate the Figure 6 walk-through.
    """
    allocated = allocation.allocated_transitions(net)
    reduced = net.copy(name=f"{net.name}_red")

    def log(action: str, node: str, reason: str) -> None:
        if trace is not None:
            trace.append(ReductionStep(action=action, node=node, reason=reason))

    removed_transitions: List[str] = []
    removed_places: List[str] = []

    def place_is_source(place: str) -> bool:
        return not reduced.preset(place)

    def remove_transition(transition: str, reason: str) -> None:
        if not reduced.has_transition(transition):
            return
        postset_places = reduced.postset_names(transition)
        reduced.remove_transition(transition)
        removed_transitions.append(transition)
        log("remove-transition", transition, reason)
        for place in postset_places:
            consider_place_removal(place, transition)

    def consider_place_removal(place: str, removed_producer: str) -> None:
        if not reduced.has_place(place):
            return
        # (b).i — the place still has another producer in the reduction
        if reduced.preset(place):
            return
        # (b).ii — keep the place (as a source place) when its consumer is
        # also fed by another place that is not a source place, so that an
        # inconsistent reduction remains visible to the consistency check.
        for successor in reduced.postset_names(place):
            for other in reduced.preset_names(successor):
                if other != place and not place_is_source(other):
                    log(
                        "keep-place",
                        place,
                        f"consumer {successor} also fed by non-source place {other}",
                    )
                    return
        successors = reduced.postset_names(place)
        reduced.remove_place(place)
        removed_places.append(place)
        log("remove-place", place, f"lost its producer {removed_producer}")
        for successor in successors:
            consider_transition_removal(successor, place)

    def consider_transition_removal(transition: str, removed_place: str) -> None:
        if not reduced.has_transition(transition):
            return
        predecessors = reduced.preset_names(transition)
        # (c).i — no predecessor place left
        if not predecessors:
            remove_transition(transition, f"lost its last input place {removed_place}")
            return
        # (c).ii — every remaining predecessor is a source place: the
        # transition can only fire finitely often from leftover tokens, so
        # it and its feeding source places are removed.
        if all(place_is_source(p) for p in predecessors):
            for place in predecessors:
                if reduced.has_place(place):
                    reduced.remove_place(place)
                    removed_places.append(place)
                    log(
                        "remove-place",
                        place,
                        f"source place feeding removed transition {transition}",
                    )
            remove_transition(
                transition, "all remaining input places were source places"
            )

    # Step 2: remove every transition not in the allocation, cascading.
    for transition in net.transition_names:
        if transition not in allocated:
            remove_transition(transition, "not in the T-allocation")

    # Step (d): iterate until no rule applies any longer.  The cascading
    # callbacks above handle the common cases; the fixpoint loop below
    # covers removals whose enabling condition only becomes true after
    # unrelated nodes have gone.
    changed = True
    while changed:
        changed = False
        for place in list(reduced.place_names):
            if reduced.preset(place):
                continue
            keep = False
            for successor in reduced.postset_names(place):
                for other in reduced.preset_names(successor):
                    if other != place and not place_is_source(other):
                        keep = True
                        break
                if keep:
                    break
            if keep:
                continue
            if not reduced.postset_names(place) and net.preset(place):
                # A place that lost both producer and consumer carries no
                # information; drop it.
                reduced.remove_place(place)
                removed_places.append(place)
                log("remove-place", place, "isolated after cascading removals")
                changed = True
        for transition in list(reduced.transition_names):
            predecessors = reduced.preset_names(transition)
            if predecessors and not all(place_is_source(p) for p in predecessors):
                continue
            if not predecessors and net.preset(transition):
                remove_transition(transition, "lost all input places")
                changed = True

    return TReduction(
        allocation=allocation,
        net=reduced,
        removed_transitions=tuple(removed_transitions),
        removed_places=tuple(removed_places),
    )


def enumerate_reductions(
    net: PetriNet,
    deduplicate: bool = True,
    max_reductions: Optional[int] = None,
    engine: str = ENGINE_COMPILED,
) -> List[TReduction]:
    """Compute the T-reductions of every T-allocation of ``net``.

    Parameters
    ----------
    deduplicate:
        When True (the default), allocations whose reductions coincide —
        because they differ only at choice places that are removed by the
        cascade (nested choices on discarded branches) — are merged; the
        paper counts distinct reductions this way (120 for the ATM
        server despite 2^11 allocations).
    max_reductions:
        Optional safety cap; a ``RuntimeError`` is raised when exceeded
        so callers never silently work with a truncated set.
    engine:
        ``"compiled"`` (default) streams the allocation product through
        the mask-based pipeline
        (:func:`repro.qss.compiled_reduction.iter_compiled_reductions`)
        and materializes a :class:`TReduction` only once per *distinct*
        reduction; ``"legacy"`` rebuilds a subnet per allocation, as the
        original algorithm did.  Both return identical reductions in
        identical order (``"frontier"`` enumerates exactly like
        ``"compiled"`` — the engines only differ downstream, in the
        per-reduction cycle search).
    """
    validate_engine(engine, SEARCH_ENGINES)
    if engine != ENGINE_LEGACY:
        from .compiled_reduction import iter_compiled_reductions

        return [
            reduction.to_reduction()
            for reduction in iter_compiled_reductions(
                net,
                deduplicate=deduplicate,
                max_reductions=max_reductions,
            )
        ]
    reductions: List[TReduction] = []
    seen: Set[Tuple[FrozenSet[str], FrozenSet[str]]] = set()
    for allocation in enumerate_allocations(net):
        reduction = reduce_net(net, allocation)
        if deduplicate:
            signature = reduction.signature()
            if signature in seen:
                continue
            seen.add(signature)
        reductions.append(reduction)
        if max_reductions is not None and len(reductions) > max_reductions:
            raise RuntimeError(
                f"net {net.name!r} has more than {max_reductions} distinct "
                "T-reductions"
            )
    return reductions


def count_distinct_reductions(net: PetriNet, engine: str = ENGINE_COMPILED) -> int:
    """Number of distinct T-reductions (the size of a valid schedule).

    With the default compiled engine (or the frontier engine, which
    enumerates identically) the count streams over reduction masks
    without building a single subnet.
    """
    validate_engine(engine, SEARCH_ENGINES)
    if engine != ENGINE_LEGACY:
        from .compiled_reduction import iter_compiled_reductions

        return sum(1 for _ in iter_compiled_reductions(net))
    return len(enumerate_reductions(net, deduplicate=True, engine=engine))


def assert_conflict_free(reduction: TReduction) -> None:
    """Sanity check: a T-reduction must be conflict-free by construction."""
    if not is_conflict_free(reduction.net):
        offending = [
            p
            for p in reduction.net.place_names
            if len(reduction.net.postset(p)) > 1
        ]
        raise AssertionError(
            f"T-reduction of {reduction.allocation} is not conflict-free; "
            f"offending places: {offending}"
        )
