"""Mask-based T-reductions over a compiled parent net.

The legacy Reduction Algorithm (:func:`repro.qss.reduction.reduce_net`)
builds a fresh Python :class:`~repro.petrinet.net.PetriNet` for every
T-allocation and :class:`~repro.qss.reduction.TReduction` recompiles each
surviving subnet before the schedulability simulation — one net rebuild
plus one compilation per allocation, in a loop that is exponential in the
number of choices.  This module removes both costs: the parent net is
compiled **once** into a :class:`~repro.petrinet.compiled.CompiledNet`
and every T-reduction is represented as a pair of boolean **masks**
(surviving transitions / surviving places) over the parent's integer
ids.

* :class:`QSSContext` holds the compiled parent plus the structural id
  arrays (producers/consumers per place, presets/postsets per
  transition, choice alternatives) shared by every reduction.
* :meth:`QSSContext.reduce` runs the Reduction Algorithm directly on the
  masks — the same rules, cascades and orderings as ``reduce_net``, so
  the surviving node sets, removal orders and dedup signatures are
  identical — without constructing any intermediate net.
* :class:`CompiledReduction` exposes the per-reduction enabledness /
  successor functions as filtered views of the parent's scalar tables
  (zero per-reduction ``exec`` compiles), T-invariants via an int64
  submatrix of the parent incidence matrix
  (:func:`~repro.petrinet.invariants.fast_minimal_semiflows`, memoized
  per submatrix on the context), and decompiles to a named
  :class:`~repro.petrinet.net.PetriNet` only on demand for reporting.
* :func:`iter_compiled_reductions` streams the allocation product with
  on-the-fly mask-signature dedup, so the exponential allocation list is
  never materialized.
"""

from __future__ import annotations

import itertools
from typing import (
    Dict,
    FrozenSet,
    Iterator,
    List,
    Mapping,
    Optional,
    Sequence,
    Tuple,
    Union,
)

import numpy as np

from ..petrinet import CompiledNet, Marking, PetriNet, compile_net
from ..petrinet.compiled import (
    ENGINE_COMPILED,
    ENGINE_FRONTIER,
    SEARCH_ENGINES,
    MarkingTuple,
    validate_engine,
)
from ..petrinet.exceptions import NotFreeChoiceError
from ..petrinet.frontier import named_firing_order
from ..petrinet.invariants import fast_minimal_semiflows
from ..petrinet.simulation import search_firing_order
from ..petrinet.structure import is_free_choice
from .allocation import TAllocation

NetLike = Union[PetriNet, CompiledNet]

#: Sentinel returned by the frontier cycle search when its state budget
#: ran out before a verdict; the caller then falls back to the DFS.
_UNDECIDED = object()


class QSSContext:
    """Shared parent-net state for the mask-based QSS pipeline.

    Built once per analysed net (one compilation, one pass over the
    arcs); every :class:`CompiledReduction` of the net references the
    same context, and the per-submatrix T-invariant memo lives here so
    structurally identical reductions (frequent in symmetric nets such
    as the ``independent_choices`` family) share one semiflow
    computation.
    """

    def __init__(self, net: NetLike) -> None:
        if isinstance(net, CompiledNet):
            self.net: Optional[PetriNet] = None
            self.compiled = net
        else:
            self.net = net
            self.compiled = compile_net(net)
        compiled = self.compiled
        self.n_transitions = len(compiled.transitions)
        self.n_places = len(compiled.places)
        self.t_pre_places: Tuple[Tuple[int, ...], ...] = tuple(
            tuple(p for p, _ in pairs) for pairs in compiled.pre_lists
        )
        self.t_post_places: Tuple[Tuple[int, ...], ...] = tuple(
            tuple(p for p, _ in pairs) for pairs in compiled.post_lists
        )
        producers: List[List[int]] = [[] for _ in range(self.n_places)]
        consumers: List[List[int]] = [[] for _ in range(self.n_places)]
        for t_id in range(self.n_transitions):
            for p_id in self.t_pre_places[t_id]:
                consumers[p_id].append(t_id)
            for p_id in self.t_post_places[t_id]:
                producers[p_id].append(t_id)
        self.place_producers: Tuple[Tuple[int, ...], ...] = tuple(
            tuple(ids) for ids in producers
        )
        self.place_consumers: Tuple[Tuple[int, ...], ...] = tuple(
            tuple(ids) for ids in consumers
        )
        # Choice places in place-id (= insertion) order; the successor
        # alternatives follow the source net's postset (arc insertion)
        # order when available so allocation enumeration — and therefore
        # first-wins dedup — matches the legacy pipeline exactly.  From a
        # bare CompiledNet the arc order is gone and id order is used.
        choice_alternatives: List[Tuple[int, Tuple[int, ...]]] = []
        for p_id in range(self.n_places):
            if len(self.place_consumers[p_id]) <= 1:
                continue
            if self.net is not None:
                t_index = compiled.transition_index
                alternatives = tuple(
                    t_index[t]
                    for t in self.net.postset_names(compiled.places[p_id])
                )
            else:
                alternatives = self.place_consumers[p_id]
            choice_alternatives.append((p_id, alternatives))
        self.choice_alternatives: Tuple[Tuple[int, Tuple[int, ...]], ...] = tuple(
            choice_alternatives
        )
        self.source_transition_names: List[str] = [
            compiled.transitions[t]
            for t in range(self.n_transitions)
            if not self.t_pre_places[t]
        ]
        self._semiflow_cache: Dict[bytes, Tuple[np.ndarray, ...]] = {}
        self._decompiled: Optional[PetriNet] = None

    # ------------------------------------------------------------------
    # Structure
    # ------------------------------------------------------------------
    @property
    def source_net(self) -> PetriNet:
        """The parent as a :class:`PetriNet` (decompiled once if needed)."""
        if self.net is not None:
            return self.net
        if self._decompiled is None:
            self._decompiled = self.compiled.decompile()
        return self._decompiled

    def is_free_choice(self) -> bool:
        """Free-choice check on whichever representation is cheapest."""
        if self.net is not None:
            return is_free_choice(self.net)
        for _, alternatives in self.choice_alternatives:
            for t_id in alternatives:
                if len(self.t_pre_places[t_id]) != 1:
                    return False
        return True

    def count_allocations(self) -> int:
        count = 1
        for _, alternatives in self.choice_alternatives:
            count *= len(alternatives)
        return count

    # ------------------------------------------------------------------
    # Allocation streaming
    # ------------------------------------------------------------------
    def iter_raw_allocations(
        self,
    ) -> Iterator[Tuple[Tuple[Tuple[int, int], ...], Tuple[int, ...]]]:
        """Yield ``(combination, excluded transition ids)`` lazily, in ids.

        ``combination`` is one ``(choice place id, chosen transition id)``
        pair per choice place.  The product order matches
        :func:`repro.qss.allocation.enumerate_allocations`, so streaming
        consumers (dedup, fail-fast analysis) observe the reductions in
        the same order as the legacy pipeline.  The name-level
        :class:`TAllocation` is deliberately *not* built here — callers
        construct it via :meth:`make_allocation` only for the
        allocations they keep.
        """
        if not self.choice_alternatives:
            yield (), ()
            return
        options = [
            [(p_id, t_id) for t_id in alternatives]
            for p_id, alternatives in self.choice_alternatives
        ]
        consumers = self.place_consumers
        for combination in itertools.product(*options):
            excluded = tuple(
                t_id
                for p_id, chosen in combination
                for t_id in consumers[p_id]
                if t_id != chosen
            )
            yield combination, excluded

    def make_allocation(
        self, combination: Sequence[Tuple[int, int]]
    ) -> TAllocation:
        """The name-level :class:`TAllocation` of an id combination."""
        places = self.compiled.places
        transitions = self.compiled.transitions
        return TAllocation(
            choices=tuple(
                sorted((places[p_id], transitions[t_id]) for p_id, t_id in combination)
            )
        )

    def iter_allocations(self) -> Iterator[Tuple[TAllocation, Tuple[int, ...]]]:
        """Yield ``(allocation, excluded transition ids)`` lazily."""
        for combination, excluded in self.iter_raw_allocations():
            yield self.make_allocation(combination), excluded

    def excluded_ids(self, allocation: TAllocation) -> Tuple[int, ...]:
        """Excluded transition ids of an externally supplied allocation."""
        place_index = self.compiled.place_index
        transition_index = self.compiled.transition_index
        excluded: List[int] = []
        for place, chosen in allocation.as_dict.items():
            p_id = place_index[place]
            chosen_id = transition_index[chosen]
            excluded.extend(
                t_id for t_id in self.place_consumers[p_id] if t_id != chosen_id
            )
        return tuple(excluded)

    # ------------------------------------------------------------------
    # The Reduction Algorithm on masks
    # ------------------------------------------------------------------
    def reduce(
        self,
        allocation: TAllocation,
        excluded: Optional[Sequence[int]] = None,
    ) -> "CompiledReduction":
        """Run the Reduction Algorithm for one allocation, on masks only.

        Mirrors :func:`repro.qss.reduction.reduce_net` rule for rule
        (conditions b.i/b.ii, c.i/c.ii and the final fixpoint sweep) in
        the same cascade order, so the surviving masks, the removal
        orders and the dedup signature are exactly the legacy ones — but
        the only state touched is two bytearrays over the parent ids.
        """
        if excluded is None:
            excluded = self.excluded_ids(allocation)
        t_mask, p_mask, removed_t, removed_p = self.reduce_masks(excluded)
        return CompiledReduction(
            context=self,
            allocation=allocation,
            transition_mask=t_mask,
            place_mask=p_mask,
            removed_transition_ids=removed_t,
            removed_place_ids=removed_p,
        )

    def reduce_masks(
        self, excluded: Sequence[int]
    ) -> Tuple[bytes, bytes, Tuple[int, ...], Tuple[int, ...]]:
        """The raw Reduction Algorithm: excluded ids in, masks out.

        Returns ``(transition_mask, place_mask, removed_transition_ids,
        removed_place_ids)`` without constructing any wrapper object —
        the form the streaming dedup loop consumes, since duplicate
        reductions are discarded before anything else is built.
        """
        t_alive = bytearray([1]) * self.n_transitions
        p_alive = bytearray([1]) * self.n_places
        removed_transitions: List[int] = []
        removed_places: List[int] = []
        producers = self.place_producers
        consumers = self.place_consumers
        t_pre = self.t_pre_places
        t_post = self.t_post_places

        # The cascade below is the hottest loop of the streaming pipeline
        # (it runs once per *allocation*), so the helpers use plain loops
        # instead of any()/all() generator expressions.

        def place_is_source(p_id: int) -> bool:
            for t in producers[p_id]:
                if t_alive[t]:
                    return False
            return True

        def remove_transition(t_id: int) -> None:
            if not t_alive[t_id]:
                return
            postset_places = [p for p in t_post[t_id] if p_alive[p]]
            t_alive[t_id] = 0
            removed_transitions.append(t_id)
            for p_id in postset_places:
                consider_place_removal(p_id)

        def consider_place_removal(p_id: int) -> None:
            if not p_alive[p_id]:
                return
            # (b).i — the place still has another producer in the reduction
            for t in producers[p_id]:
                if t_alive[t]:
                    return
            # (b).ii — keep the place (as a source place) when its consumer
            # is also fed from elsewhere by a non-source place
            for successor in consumers[p_id]:
                if not t_alive[successor]:
                    continue
                for other in t_pre[successor]:
                    if other != p_id and p_alive[other] and not place_is_source(other):
                        return
            successors = [t for t in consumers[p_id] if t_alive[t]]
            p_alive[p_id] = 0
            removed_places.append(p_id)
            for successor in successors:
                consider_transition_removal(successor)

        def consider_transition_removal(t_id: int) -> None:
            if not t_alive[t_id]:
                return
            predecessors = [p for p in t_pre[t_id] if p_alive[p]]
            # (c).i — no predecessor place left
            if not predecessors:
                remove_transition(t_id)
                return
            # (c).ii — every remaining predecessor is a source place
            for p_id in predecessors:
                if not place_is_source(p_id):
                    return
            for p_id in predecessors:
                if p_alive[p_id]:
                    p_alive[p_id] = 0
                    removed_places.append(p_id)
            remove_transition(t_id)

        # Step 2: remove every transition not in the allocation, cascading.
        # Sorted by id to match the legacy sweep over net.transition_names.
        for t_id in sorted(excluded):
            remove_transition(t_id)

        # Step (d): iterate until no rule applies any longer.
        changed = True
        while changed:
            changed = False
            for p_id in range(self.n_places):
                if not p_alive[p_id]:
                    continue
                if not place_is_source(p_id):
                    continue
                keep = False
                for successor in consumers[p_id]:
                    if not t_alive[successor]:
                        continue
                    for other in t_pre[successor]:
                        if (
                            other != p_id
                            and p_alive[other]
                            and not place_is_source(other)
                        ):
                            keep = True
                            break
                    if keep:
                        break
                if keep:
                    continue
                has_live_consumer = False
                for t in consumers[p_id]:
                    if t_alive[t]:
                        has_live_consumer = True
                        break
                if not has_live_consumer and producers[p_id]:
                    # A place that lost both producer and consumer carries
                    # no information; drop it.
                    p_alive[p_id] = 0
                    removed_places.append(p_id)
                    changed = True
            for t_id in range(self.n_transitions):
                if not t_alive[t_id]:
                    continue
                predecessors = [p for p in t_pre[t_id] if p_alive[p]]
                if predecessors:
                    all_sources = True
                    for p_id in predecessors:
                        if not place_is_source(p_id):
                            all_sources = False
                            break
                    if not all_sources:
                        continue
                if not predecessors and t_pre[t_id]:
                    remove_transition(t_id)
                    changed = True

        return (
            bytes(t_alive),
            bytes(p_alive),
            tuple(removed_transitions),
            tuple(removed_places),
        )

    # ------------------------------------------------------------------
    # Invariants (memoized per incidence submatrix)
    # ------------------------------------------------------------------
    def semiflows_for(
        self, t_ids: Sequence[int], p_ids: Sequence[int]
    ) -> Tuple[np.ndarray, ...]:
        """Minimal semiflow vectors of the masked incidence submatrix."""
        sub = self.compiled.incidence[np.ix_(t_ids, p_ids)]
        key = sub.tobytes() + b"|" + np.int64(sub.shape[1]).tobytes()
        cached = self._semiflow_cache.get(key)
        if cached is None:
            cached = tuple(fast_minimal_semiflows(sub))
            self._semiflow_cache[key] = cached
        return cached


class CompiledReduction:
    """A T-reduction as boolean masks over the parent :class:`QSSContext`.

    Offers the same identity surface as
    :class:`~repro.qss.reduction.TReduction` — ``allocation``,
    ``transition_set`` / ``place_set``, ``signature()``,
    ``source_places()`` and a lazily decompiled ``net`` — plus the
    id-level token-game primitives the schedulability check runs on:
    per-reduction enabledness and successor functions that filter the
    parent's scalar preset/delta tables through the masks, with no net
    rebuild and no ``exec`` compilation anywhere.
    """

    __slots__ = (
        "context",
        "allocation",
        "transition_mask",
        "place_mask",
        "removed_transition_ids",
        "removed_place_ids",
        "_cache",
    )

    def __init__(
        self,
        context: QSSContext,
        allocation: TAllocation,
        transition_mask: bytes,
        place_mask: bytes,
        removed_transition_ids: Tuple[int, ...],
        removed_place_ids: Tuple[int, ...],
    ) -> None:
        self.context = context
        self.allocation = allocation
        self.transition_mask = transition_mask
        self.place_mask = place_mask
        self.removed_transition_ids = removed_transition_ids
        self.removed_place_ids = removed_place_ids
        self._cache: Dict[str, object] = {}

    # ------------------------------------------------------------------
    # Identity
    # ------------------------------------------------------------------
    @property
    def transition_ids(self) -> Tuple[int, ...]:
        ids = self._cache.get("transition_ids")
        if ids is None:
            ids = tuple(
                t for t, alive in enumerate(self.transition_mask) if alive
            )
            self._cache["transition_ids"] = ids
        return ids  # type: ignore[return-value]

    @property
    def place_ids(self) -> Tuple[int, ...]:
        ids = self._cache.get("place_ids")
        if ids is None:
            ids = tuple(p for p, alive in enumerate(self.place_mask) if alive)
            self._cache["place_ids"] = ids
        return ids  # type: ignore[return-value]

    @property
    def transition_names(self) -> List[str]:
        names = self.context.compiled.transitions
        return [names[t] for t in self.transition_ids]

    @property
    def place_names(self) -> List[str]:
        names = self.context.compiled.places
        return [names[p] for p in self.place_ids]

    @property
    def removed_transitions(self) -> Tuple[str, ...]:
        names = self.context.compiled.transitions
        return tuple(names[t] for t in self.removed_transition_ids)

    @property
    def removed_places(self) -> Tuple[str, ...]:
        names = self.context.compiled.places
        return tuple(names[p] for p in self.removed_place_ids)

    @property
    def transition_set(self) -> FrozenSet[str]:
        return frozenset(self.transition_names)

    @property
    def place_set(self) -> FrozenSet[str]:
        return frozenset(self.place_names)

    def signature(self) -> Tuple[FrozenSet[str], FrozenSet[str]]:
        """The legacy name-level dedup signature (for cross-checking)."""
        return (self.transition_set, self.place_set)

    def mask_signature(self) -> bytes:
        """Compact dedup identity: the raw masks over the parent ids.

        Two reductions of the same context have equal mask signatures
        iff their legacy :meth:`signature` tuples are equal — the masks
        *are* the node sets, just without the frozenset construction.
        """
        return self.transition_mask + b"|" + self.place_mask

    def source_place_ids(self) -> List[int]:
        """Ids of surviving places left without any surviving producer."""
        producers = self.context.place_producers
        t_mask = self.transition_mask
        return [
            p
            for p in self.place_ids
            if not any(t_mask[t] for t in producers[p])
        ]

    def source_places(self) -> List[str]:
        """Names of the reduction's producer-less places (Figure 7 symptom)."""
        names = self.context.compiled.places
        return [names[p] for p in self.source_place_ids()]

    # ------------------------------------------------------------------
    # Token game restricted to the masks
    # ------------------------------------------------------------------
    @property
    def initial(self) -> MarkingTuple:
        """Parent initial marking restricted to the surviving places."""
        marking = self._cache.get("initial")
        if marking is None:
            p_mask = self.place_mask
            marking = tuple(
                tokens if p_mask[p] else 0
                for p, tokens in enumerate(self.context.compiled.initial)
            )
            self._cache["initial"] = marking
        return marking  # type: ignore[return-value]

    def restrict_marking(self, marking: Mapping[str, int]) -> MarkingTuple:
        """A name-keyed marking as a parent tuple, zeroed off the masks."""
        compiled = self.context.compiled
        p_mask = self.place_mask
        get = marking.get
        return tuple(
            get(place, 0) if p_mask[p] else 0
            for p, place in enumerate(compiled.places)
        )

    @property
    def masked_pre_lists(self) -> Tuple[Tuple[Tuple[int, int], ...], ...]:
        """Per-transition ``(place_id, weight)`` presets filtered by the
        place mask, indexed by parent transition id (dead transitions keep
        their full rows but are never fired)."""
        lists = self._cache.get("masked_pre_lists")
        if lists is None:
            p_mask = self.place_mask
            lists = tuple(
                tuple(pair for pair in pairs if p_mask[pair[0]])
                for pairs in self.context.compiled.pre_lists
            )
            self._cache["masked_pre_lists"] = lists
        return lists  # type: ignore[return-value]

    @property
    def masked_delta_lists(self) -> Tuple[Tuple[Tuple[int, int], ...], ...]:
        """Per-transition combined token deltas restricted to the masks."""
        lists = self._cache.get("masked_delta_lists")
        if lists is None:
            p_mask = self.place_mask
            compiled = self.context.compiled
            out: List[Tuple[Tuple[int, int], ...]] = []
            for t_id in range(self.context.n_transitions):
                delta: Dict[int, int] = {}
                for p_id, weight in compiled.pre_lists[t_id]:
                    if p_mask[p_id]:
                        delta[p_id] = delta.get(p_id, 0) - weight
                for p_id, weight in compiled.post_lists[t_id]:
                    if p_mask[p_id]:
                        delta[p_id] = delta.get(p_id, 0) + weight
                out.append(tuple((p, d) for p, d in delta.items() if d))
            lists = tuple(out)
            self._cache["masked_delta_lists"] = lists
        return lists  # type: ignore[return-value]

    def is_enabled(self, transition: int, marking: Sequence[int]) -> bool:
        """Enabledness of a surviving transition under masked semantics."""
        for p_id, weight in self.masked_pre_lists[transition]:
            if marking[p_id] < weight:
                return False
        return True

    def fire_unchecked(self, transition: int, marking: MarkingTuple) -> MarkingTuple:
        result = list(marking)
        for p_id, delta in self.masked_delta_lists[transition]:
            result[p_id] += delta
        return tuple(result)

    def enabled_transitions(self, marking: Sequence[int]) -> List[int]:
        """Ids of the surviving transitions enabled in ``marking``."""
        return [t for t in self.transition_ids if self.is_enabled(t, marking)]

    # ------------------------------------------------------------------
    # Invariants and cycles
    # ------------------------------------------------------------------
    def t_invariants(self) -> List[Dict[str, int]]:
        """Minimal T-invariants of the reduction, straight off the parent.

        Computed on the int64 incidence submatrix selected by the masks
        (identical values, row and column order as the legacy reduced
        net's own incidence matrix) and memoized per submatrix on the
        context, so structurally identical reductions pay once.
        """
        invariants = self._cache.get("t_invariants")
        if invariants is None:
            t_ids = self.transition_ids
            solutions = self.context.semiflows_for(t_ids, self.place_ids)
            names = self.context.compiled.transitions
            invariants = [
                {
                    names[t_ids[i]]: int(value)
                    for i, value in enumerate(solution)
                    if value
                }
                for solution in solutions
            ]
            invariants.sort(key=lambda inv: sorted(inv.items()))
            self._cache["t_invariants"] = invariants
        return invariants  # type: ignore[return-value]

    def find_firing_sequence(
        self,
        firing_counts: Mapping[str, int],
        start: MarkingTuple,
        engine: str = ENGINE_COMPILED,
    ) -> Optional[List[str]]:
        """Executable ordering of ``firing_counts`` under masked semantics.

        Same memoized DFS (and candidate order) as the legacy engines,
        running on parent marking tuples filtered through the masks.

        ``engine="frontier"`` instead runs the level-synchronous batched
        BFS of :func:`repro.petrinet.frontier.frontier_firing_order` on
        the reduction's masked incidence submatrix — the preset and
        incidence rows of the counted transitions restricted to the
        surviving place columns, so arcs to removed places are ignored
        exactly as the masked scalar tables ignore them.  Feasibility
        agrees with the DFS on every input (both searches are complete;
        a blown state budget falls back to the DFS), but the returned
        interleaving may differ.  ``"compiled"`` and ``"legacy"`` both
        run the DFS — the masked tables *are* the compiled form.
        """
        validate_engine(engine, SEARCH_ENGINES)
        if engine == ENGINE_FRONTIER:
            sequence = self._find_firing_sequence_frontier(firing_counts, start)
            if sequence is not _UNDECIDED:
                return sequence  # type: ignore[return-value]
        transition_index = self.context.compiled.transition_index
        remaining: Dict[int, int] = {}
        for name, count in firing_counts.items():
            if count > 0:
                remaining[transition_index[name]] = int(count)
        # bind the masked tables once; the property indirection would
        # otherwise run on every firing attempt of the DFS
        pre_lists = self.masked_pre_lists
        delta_lists = self.masked_delta_lists

        def is_enabled(t_id: int, marking) -> bool:
            for p_id, weight in pre_lists[t_id]:
                if marking[p_id] < weight:
                    return False
            return True

        def fire(t_id: int, marking):
            result = list(marking)
            for p_id, delta in delta_lists[t_id]:
                result[p_id] += delta
            return tuple(result)

        sequence = search_firing_order(start, remaining, is_enabled, fire)
        if sequence is None:
            return None
        names = self.context.compiled.transitions
        return [names[t] for t in sequence]

    def _find_firing_sequence_frontier(self, firing_counts, start):
        """Masked-submatrix frontier search; ``_UNDECIDED`` on a blown budget."""
        compiled = self.context.compiled
        names = [name for name, count in firing_counts.items() if count > 0]
        if not names:
            return []
        t_ids = np.array(
            [compiled.transition_index[n] for n in names], dtype=np.int64
        )
        p_ids = np.array(self.place_ids, dtype=np.int64)
        selector = np.ix_(t_ids, p_ids)
        sequence, decided = named_firing_order(
            compiled.pre[selector],
            compiled.incidence[selector],
            np.asarray(start, dtype=np.int64)[p_ids],
            names,
            firing_counts,
        )
        if not decided:
            return _UNDECIDED
        return sequence

    def find_finite_complete_cycle(
        self,
        firing_counts: Mapping[str, int],
        start: MarkingTuple,
        engine: str = ENGINE_COMPILED,
    ) -> Optional[List[str]]:
        """A firing sequence realizing the counts and returning to ``start``."""
        sequence = self.find_firing_sequence(firing_counts, start, engine=engine)
        if sequence is None:
            return None
        transition_index = self.context.compiled.transition_index
        delta_lists = self.masked_delta_lists
        current = list(start)
        for name in sequence:
            for p_id, delta in delta_lists[transition_index[name]]:
                current[p_id] += delta
        if tuple(current) != start:
            return None
        return sequence

    # ------------------------------------------------------------------
    # Decompilation (reporting only)
    # ------------------------------------------------------------------
    @property
    def net(self) -> PetriNet:
        """The reduction as a named :class:`PetriNet`, built on demand.

        The hot pipeline never calls this; it exists so reports, code
        generation and the differential tests can compare against the
        legacy representation.  The result equals the net produced by
        ``reduce_net`` for the same allocation: the induced subnet of
        the parent with the initial marking restricted to the surviving
        places.
        """
        built = self._cache.get("net")
        if built is None:
            source = self.context.source_net
            built = source.subnet(
                self.place_names,
                self.transition_names,
                name=f"{source.name}_red",
            )
            self._cache["net"] = built
        return built  # type: ignore[return-value]

    def to_reduction(self):
        """Materialize the equivalent legacy :class:`TReduction`."""
        from .reduction import TReduction

        return TReduction(
            allocation=self.allocation,
            net=self.net,
            removed_transitions=self.removed_transitions,
            removed_places=self.removed_places,
        )

    def __repr__(self) -> str:
        return (
            f"CompiledReduction(net={self.context.compiled.name!r}, "
            f"transitions={len(self.transition_ids)}/{self.context.n_transitions}, "
            f"places={len(self.place_ids)}/{self.context.n_places})"
        )


def iter_compiled_reductions(
    net: NetLike,
    context: Optional[QSSContext] = None,
    deduplicate: bool = True,
    require_free_choice: bool = True,
    max_reductions: Optional[int] = None,
) -> Iterator[CompiledReduction]:
    """Stream the distinct T-reductions of ``net`` as mask views.

    The allocation product is consumed lazily with on-the-fly
    mask-signature dedup, so the (exponential) allocation list is never
    materialized and consumers such as ``fail_fast`` analyses can stop
    early.  Enumeration order and first-wins dedup match the legacy
    :func:`repro.qss.reduction.enumerate_reductions` exactly.
    """
    ctx = context if context is not None else QSSContext(net)
    if require_free_choice and not ctx.is_free_choice():
        raise NotFreeChoiceError(
            f"net {ctx.compiled.name!r} is not free-choice; quasi-static "
            "scheduling is defined for Free-Choice Petri Nets"
        )
    seen: set = set()
    yielded = 0
    for combination, excluded in ctx.iter_raw_allocations():
        masks = ctx.reduce_masks(excluded)
        if deduplicate:
            signature = masks[0] + b"|" + masks[1]
            if signature in seen:
                continue
            seen.add(signature)
        if max_reductions is not None and yielded >= max_reductions:
            raise RuntimeError(
                f"net {ctx.compiled.name!r} has more than {max_reductions} "
                "distinct T-reductions"
            )
        yielded += 1
        yield CompiledReduction(
            context=ctx,
            allocation=ctx.make_allocation(combination),
            transition_mask=masks[0],
            place_mask=masks[1],
            removed_transition_ids=masks[2],
            removed_place_ids=masks[3],
        )


def enumerate_compiled_reductions(
    net: NetLike,
    context: Optional[QSSContext] = None,
    deduplicate: bool = True,
    require_free_choice: bool = True,
    max_reductions: Optional[int] = None,
) -> List[CompiledReduction]:
    """Eager form of :func:`iter_compiled_reductions`."""
    return list(
        iter_compiled_reductions(
            net,
            context=context,
            deduplicate=deduplicate,
            require_free_choice=require_free_choice,
            max_reductions=max_reductions,
        )
    )
