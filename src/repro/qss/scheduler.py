"""The Quasi-Static Scheduling algorithm (Section 3 of the paper).

The top-level entry points are :func:`is_schedulable` and
:func:`compute_valid_schedule`:

1. check that the net is a Free-Choice Petri Net;
2. decompose it into T-reductions, one per resolution of the
   non-deterministic choices (deduplicating allocations that induce the
   same reduction);
3. statically schedule each reduction with the SDF-style machinery
   (T-invariants + deadlock-free constrained simulation);
4. if every reduction is schedulable (Theorem 3.1), assemble the valid
   schedule — a set of finite complete cycles, one per reduction — from
   which C code is synthesized by :mod:`repro.codegen`.

When the net is not schedulable a :class:`SchedulabilityReport` explains
which reductions fail and why, so the designer is "notified that there
exists no implementation that can be executed forever with bounded
memory".
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from ..petrinet import ENGINE_COMPILED, Marking, PetriNet, validate_engine
from ..petrinet.exceptions import NotFreeChoiceError, NotSchedulableError
from ..petrinet.structure import is_free_choice
from .allocation import count_allocations
from .reduction import TReduction, enumerate_reductions
from .schedulability import ReductionVerdict, check_reduction
from .schedule import FiniteCompleteCycle, ValidSchedule


@dataclass
class SchedulabilityReport:
    """Full outcome of the QSS schedulability analysis of a net.

    Attributes
    ----------
    net:
        The analysed net.
    schedulable:
        True iff every T-reduction is schedulable (Theorem 3.1).
    verdicts:
        Per-reduction verdicts with diagnostics.
    allocation_count:
        Number of T-allocations (product of the choice out-degrees).
    reduction_count:
        Number of *distinct* T-reductions — the number of finite complete
        cycles a valid schedule will contain.
    schedule:
        The valid schedule when the net is schedulable, else ``None``.
    """

    net: PetriNet
    schedulable: bool
    verdicts: List[ReductionVerdict] = field(default_factory=list)
    allocation_count: int = 0
    reduction_count: int = 0
    schedule: Optional[ValidSchedule] = None

    @property
    def failing_verdicts(self) -> List[ReductionVerdict]:
        return [v for v in self.verdicts if not v.schedulable]

    def explain(self) -> str:
        """Multi-line human readable report."""
        lines = [
            f"net {self.net.name!r}: {self.allocation_count} T-allocations, "
            f"{self.reduction_count} distinct T-reductions"
        ]
        if self.schedulable:
            lines.append("the net is quasi-statically schedulable")
        else:
            lines.append("the net is NOT quasi-statically schedulable")
            for verdict in self.failing_verdicts:
                lines.append("  - " + verdict.explain())
        return "\n".join(lines)


def analyse(
    net: PetriNet,
    marking: Optional[Marking] = None,
    require_free_choice: bool = True,
    engine: str = ENGINE_COMPILED,
) -> SchedulabilityReport:
    """Run the complete QSS analysis and build the valid schedule if any.

    ``engine`` selects the execution core for the per-reduction
    constrained simulations: ``"compiled"`` (default) or ``"legacy"``;
    both produce identical verdicts and cycles.

    Raises
    ------
    NotFreeChoiceError
        If ``require_free_choice`` is True and the net is not free-choice.
    """
    validate_engine(engine)
    if require_free_choice and not is_free_choice(net):
        raise NotFreeChoiceError(
            f"net {net.name!r} is not a Free-Choice Petri Net; the QSS "
            "algorithm is only defined (and complete) for FCPNs"
        )
    reductions = enumerate_reductions(net, deduplicate=True)
    verdicts = [
        check_reduction(net, reduction, marking, engine=engine)
        for reduction in reductions
    ]
    schedulable = all(v.schedulable for v in verdicts)
    report = SchedulabilityReport(
        net=net,
        schedulable=schedulable,
        verdicts=verdicts,
        allocation_count=count_allocations(net),
        reduction_count=len(reductions),
    )
    if schedulable:
        schedule = ValidSchedule(net=net)
        for verdict in verdicts:
            assert verdict.cycle is not None
            schedule.cycles.append(
                FiniteCompleteCycle.from_sequence(
                    verdict.cycle,
                    allocation=verdict.reduction.allocation,
                    reduction_transitions=verdict.reduction.transition_set,
                )
            )
        report.schedule = schedule
    return report


def is_schedulable(
    net: PetriNet, marking: Optional[Marking] = None, engine: str = ENGINE_COMPILED
) -> bool:
    """True iff the FCPN is quasi-statically schedulable (Definition 3.2)."""
    return analyse(net, marking, engine=engine).schedulable


def compute_valid_schedule(
    net: PetriNet, marking: Optional[Marking] = None, engine: str = ENGINE_COMPILED
) -> ValidSchedule:
    """Compute a valid schedule, raising when the net is not schedulable.

    Raises
    ------
    NotSchedulableError
        With the full diagnostic report in the message when the net has
        no valid schedule.
    """
    report = analyse(net, marking, engine=engine)
    if not report.schedulable or report.schedule is None:
        raise NotSchedulableError(report.explain())
    return report.schedule


class QuasiStaticScheduler:
    """Object-oriented facade over :func:`analyse` for incremental use.

    The scheduler caches the report so that the examples/benchmarks can
    query schedulability, the schedule and per-reduction details without
    re-running the decomposition.
    """

    def __init__(
        self,
        net: PetriNet,
        marking: Optional[Marking] = None,
        engine: str = ENGINE_COMPILED,
    ) -> None:
        self.net = net
        self.marking = marking
        self.engine = validate_engine(engine)
        self._report: Optional[SchedulabilityReport] = None

    @property
    def report(self) -> SchedulabilityReport:
        if self._report is None:
            self._report = analyse(self.net, self.marking, engine=self.engine)
        return self._report

    def is_schedulable(self) -> bool:
        return self.report.schedulable

    def valid_schedule(self) -> ValidSchedule:
        report = self.report
        if not report.schedulable or report.schedule is None:
            raise NotSchedulableError(report.explain())
        return report.schedule

    def reductions(self) -> List[TReduction]:
        return [verdict.reduction for verdict in self.report.verdicts]

    def explain(self) -> str:
        return self.report.explain()
