"""The Quasi-Static Scheduling algorithm (Section 3 of the paper).

The top-level entry points are :func:`is_schedulable` and
:func:`compute_valid_schedule`:

1. check that the net is a Free-Choice Petri Net;
2. decompose it into T-reductions, one per resolution of the
   non-deterministic choices (deduplicating allocations that induce the
   same reduction);
3. statically schedule each reduction with the SDF-style machinery
   (T-invariants + deadlock-free constrained simulation);
4. if every reduction is schedulable (Theorem 3.1), assemble the valid
   schedule — a set of finite complete cycles, one per reduction — from
   which C code is synthesized by :mod:`repro.codegen`.

When the net is not schedulable a :class:`SchedulabilityReport` explains
which reductions fail and why, so the designer is "notified that there
exists no implementation that can be executed forever with bounded
memory".
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence, Tuple

from ..petrinet import (
    ENGINE_COMPILED,
    ENGINE_LEGACY,
    SEARCH_ENGINES,
    Marking,
    PetriNet,
    validate_engine,
)
from ..petrinet.exceptions import NotFreeChoiceError, NotSchedulableError
from ..petrinet.structure import is_free_choice
from .allocation import TAllocation, count_allocations
from .compiled_reduction import QSSContext, iter_compiled_reductions
from .reduction import TReduction, enumerate_reductions, reduce_net
from .schedulability import (
    ReductionVerdict,
    check_compiled_reduction,
    check_reduction,
)
from .schedule import FiniteCompleteCycle, ValidSchedule


@dataclass
class SchedulabilityReport:
    """Full outcome of the QSS schedulability analysis of a net.

    Attributes
    ----------
    net:
        The analysed net.
    schedulable:
        True iff every T-reduction is schedulable (Theorem 3.1).
    verdicts:
        Per-reduction verdicts with diagnostics.
    allocation_count:
        Number of T-allocations (product of the choice out-degrees).
    reduction_count:
        Number of *distinct* T-reductions — the number of finite complete
        cycles a valid schedule will contain.
    schedule:
        The valid schedule when the net is schedulable, else ``None``.
    """

    net: PetriNet
    schedulable: bool
    verdicts: List[ReductionVerdict] = field(default_factory=list)
    allocation_count: int = 0
    reduction_count: int = 0
    schedule: Optional[ValidSchedule] = None
    #: False when a ``fail_fast`` analysis stopped at a failing
    #: T-reduction instead of checking (or, under the streaming
    #: pipeline, enumerating) everything; ``verdicts`` then holds only
    #: the partial results and ``reduction_count`` counts only the
    #: reductions examined.  Every engine and worker configuration sets
    #: this identically: any fail-fast stop reports ``complete=False``,
    #: even if the failing reduction happened to be the final one.
    complete: bool = True

    @property
    def failing_verdicts(self) -> List[ReductionVerdict]:
        return [v for v in self.verdicts if not v.schedulable]

    def explain(self) -> str:
        """Multi-line human readable report."""
        lines = [
            f"net {self.net.name!r}: {self.allocation_count} T-allocations, "
            f"{self.reduction_count} distinct T-reductions"
            + ("" if self.complete else " examined (fail-fast stop)")
        ]
        if self.schedulable:
            lines.append("the net is quasi-statically schedulable")
        else:
            lines.append("the net is NOT quasi-statically schedulable")
            for verdict in self.failing_verdicts:
                lines.append("  - " + verdict.explain())
        return "\n".join(lines)


# ----------------------------------------------------------------------
# Multiprocessing pool over reductions
# ----------------------------------------------------------------------
#: Per-worker state, built once per pool process by the initializer (the
#: per-worker cache pattern of :mod:`repro.petrinet.corpus`): the net,
#: the marking and — for the compiled engine — the shared
#: :class:`QSSContext`, so every reduction checked by a worker reuses
#: one compilation and one semiflow memo.
_QSS_WORKER: Dict[str, Any] = {}

#: Fields shipped back from pool workers; everything in a
#: :class:`ReductionVerdict` except the (unpicklable, parent-side)
#: reduction object itself.
_VERDICT_FIELDS = (
    "schedulable",
    "consistent",
    "sources_covered",
    "cycle",
    "uncovered_transitions",
    "uncovered_sources",
    "source_places",
    "deadlocked",
    "invariants",
)


def _init_qss_worker(
    net: PetriNet, marking_tokens: Optional[Dict[str, int]], engine: str
) -> None:  # pragma: no cover - runs inside pool processes
    _QSS_WORKER["net"] = net
    _QSS_WORKER["marking"] = (
        Marking(marking_tokens) if marking_tokens is not None else None
    )
    _QSS_WORKER["engine"] = engine
    _QSS_WORKER["context"] = QSSContext(net) if engine != ENGINE_LEGACY else None


def _check_allocation_worker(
    choices: Tuple[Tuple[str, str], ...]
) -> Tuple[Tuple[Tuple[str, str], ...], Dict[str, Any]]:  # pragma: no cover
    """Pool task: re-derive the reduction for one allocation and check it."""
    allocation = TAllocation(choices=choices)
    marking = _QSS_WORKER["marking"]
    engine = _QSS_WORKER["engine"]
    if engine != ENGINE_LEGACY:
        reduction = _QSS_WORKER["context"].reduce(allocation)
        verdict = check_compiled_reduction(reduction, marking, engine=engine)
    else:
        reduction = reduce_net(_QSS_WORKER["net"], allocation)
        verdict = check_reduction(
            _QSS_WORKER["net"], reduction, marking, engine=ENGINE_LEGACY
        )
    return choices, {name: getattr(verdict, name) for name in _VERDICT_FIELDS}


def _verdict_from_fields(reduction, fields: Dict[str, Any]) -> ReductionVerdict:
    return ReductionVerdict(reduction=reduction, **fields)


def _check_reductions_parallel(
    net: PetriNet,
    reductions: Sequence[Any],
    marking: Optional[Marking],
    engine: str,
    fail_fast: bool,
    workers: int,
) -> Tuple[List[ReductionVerdict], bool]:
    """Fan the per-reduction checks out over a process pool.

    Workers receive only the allocation choice tuples (the net travels
    once, through the pool initializer) and return picklable verdict
    fields; the parent re-attaches its own reduction objects, so the
    report is indistinguishable from a sequential run.  Results are
    consumed in reduction order, which makes the ``fail_fast`` partial
    verdict list deterministic regardless of pool scheduling.
    """
    import multiprocessing

    marking_tokens = dict(marking.tokens) if marking is not None else None
    pool_size = min(workers, len(reductions))
    payload = [reduction.allocation.choices for reduction in reductions]
    chunksize = 1 if fail_fast else max(1, len(payload) // (pool_size * 4))
    verdicts: List[ReductionVerdict] = []
    complete = True
    with multiprocessing.Pool(
        pool_size,
        initializer=_init_qss_worker,
        initargs=(net, marking_tokens, engine),
    ) as pool:
        for _, fields in pool.imap(
            _check_allocation_worker, payload, chunksize=chunksize
        ):
            verdicts.append(
                _verdict_from_fields(reductions[len(verdicts)], fields)
            )
            if fail_fast and not verdicts[-1].schedulable:
                complete = False
                pool.terminate()
                break
    return verdicts, complete


def analyse(
    net: PetriNet,
    marking: Optional[Marking] = None,
    require_free_choice: bool = True,
    engine: str = ENGINE_COMPILED,
    fail_fast: bool = False,
    workers: int = 1,
) -> SchedulabilityReport:
    """Run the complete QSS analysis and build the valid schedule if any.

    ``engine`` selects the synthesis pipeline: ``"compiled"`` (default)
    streams mask-based T-reductions over one compiled parent net —
    zero per-allocation net rebuilds or recompiles — while ``"legacy"``
    rebuilds and checks a Python subnet per allocation, as the original
    implementation did.  Both produce identical verdicts and cycles.
    ``"frontier"`` uses the same streaming mask pipeline but runs each
    reduction's cycle search as a batched BFS over its masked incidence
    submatrix (:mod:`repro.petrinet.frontier`); verdicts, counts and
    cycle lengths are identical to the other engines, though the cycles
    themselves may be different valid interleavings.

    Parameters
    ----------
    fail_fast:
        Stop at the first unschedulable T-reduction instead of checking
        (and, under the streaming compiled pipeline, enumerating) every
        one.  The report then carries the partial verdicts computed so
        far, ``complete=False`` and ``reduction_count`` equal to the
        number of reductions examined.
    workers:
        When > 1, fan the per-reduction schedulability checks out over a
        :mod:`multiprocessing` pool of that size (reductions are
        enumerated and deduplicated in the parent first; each worker
        re-derives its reductions from the compact allocation choices
        and keeps a per-process compiled context, the per-worker cache
        pattern of :mod:`repro.petrinet.corpus`).  Results are
        identical to a sequential run.

    Raises
    ------
    NotFreeChoiceError
        If ``require_free_choice`` is True and the net is not free-choice.
    """
    validate_engine(engine, SEARCH_ENGINES)
    if require_free_choice and not is_free_choice(net):
        raise NotFreeChoiceError(
            f"net {net.name!r} is not a Free-Choice Petri Net; the QSS "
            "algorithm is only defined (and complete) for FCPNs"
        )
    complete = True
    if engine != ENGINE_LEGACY:
        context = QSSContext(net)
        if workers > 1:
            reductions: List[Any] = list(
                iter_compiled_reductions(
                    net, context=context, require_free_choice=False
                )
            )
            if len(reductions) > 1:
                verdicts, complete = _check_reductions_parallel(
                    net, reductions, marking, engine, fail_fast, workers
                )
            else:
                # a pool cannot help with <= 1 reduction; run the same
                # sequential loop (including fail_fast semantics)
                verdicts = []
                for reduction in reductions:
                    verdict = check_compiled_reduction(
                        reduction, marking, engine=engine
                    )
                    verdicts.append(verdict)
                    if fail_fast and not verdict.schedulable:
                        complete = False
                        break
        else:
            verdicts = []
            for reduction in iter_compiled_reductions(
                net, context=context, require_free_choice=False
            ):
                verdict = check_compiled_reduction(reduction, marking, engine=engine)
                verdicts.append(verdict)
                if fail_fast and not verdict.schedulable:
                    complete = False
                    break
    else:
        legacy_reductions = enumerate_reductions(
            net, deduplicate=True, engine=ENGINE_LEGACY
        )
        if workers > 1 and len(legacy_reductions) > 1:
            verdicts, complete = _check_reductions_parallel(
                net, legacy_reductions, marking, engine, fail_fast, workers
            )
        else:
            verdicts = []
            for reduction in legacy_reductions:
                verdict = check_reduction(net, reduction, marking, engine=engine)
                verdicts.append(verdict)
                if fail_fast and not verdict.schedulable:
                    complete = False
                    break
    schedulable = all(v.schedulable for v in verdicts)
    report = SchedulabilityReport(
        net=net,
        schedulable=schedulable,
        verdicts=verdicts,
        allocation_count=count_allocations(net),
        reduction_count=len(verdicts),
        complete=complete,
    )
    if schedulable and complete:
        schedule = ValidSchedule(net=net)
        for verdict in verdicts:
            assert verdict.cycle is not None
            schedule.cycles.append(
                FiniteCompleteCycle.from_sequence(
                    verdict.cycle,
                    allocation=verdict.reduction.allocation,
                    reduction_transitions=verdict.reduction.transition_set,
                )
            )
        report.schedule = schedule
    return report


def is_schedulable(
    net: PetriNet,
    marking: Optional[Marking] = None,
    engine: str = ENGINE_COMPILED,
    fail_fast: bool = True,
    workers: int = 1,
) -> bool:
    """True iff the FCPN is quasi-statically schedulable (Definition 3.2).

    Only the boolean verdict is needed here, so the analysis defaults to
    ``fail_fast=True``: the first unschedulable T-reduction already
    falsifies Theorem 3.1's "every reduction is schedulable", and the
    streaming pipeline stops enumerating right there.  Pass
    ``fail_fast=False`` to force the exhaustive check.
    """
    return analyse(
        net, marking, engine=engine, fail_fast=fail_fast, workers=workers
    ).schedulable


def compute_valid_schedule(
    net: PetriNet,
    marking: Optional[Marking] = None,
    engine: str = ENGINE_COMPILED,
    workers: int = 1,
) -> ValidSchedule:
    """Compute a valid schedule, raising when the net is not schedulable.

    Raises
    ------
    NotSchedulableError
        With the full diagnostic report in the message when the net has
        no valid schedule.
    """
    report = analyse(net, marking, engine=engine, workers=workers)
    if not report.schedulable or report.schedule is None:
        raise NotSchedulableError(report.explain())
    return report.schedule


class QuasiStaticScheduler:
    """Object-oriented facade over :func:`analyse` for incremental use.

    The scheduler caches the report so that the examples/benchmarks can
    query schedulability, the schedule and per-reduction details without
    re-running the decomposition.
    """

    def __init__(
        self,
        net: PetriNet,
        marking: Optional[Marking] = None,
        engine: str = ENGINE_COMPILED,
        workers: int = 1,
    ) -> None:
        self.net = net
        self.marking = marking
        self.engine = validate_engine(engine, SEARCH_ENGINES)
        self.workers = workers
        self._report: Optional[SchedulabilityReport] = None

    @property
    def report(self) -> SchedulabilityReport:
        if self._report is None:
            self._report = analyse(
                self.net, self.marking, engine=self.engine, workers=self.workers
            )
        return self._report

    def is_schedulable(self) -> bool:
        return self.report.schedulable

    def valid_schedule(self) -> ValidSchedule:
        report = self.report
        if not report.schedulable or report.schedule is None:
            raise NotSchedulableError(report.explain())
        return report.schedule

    def reductions(self) -> List[TReduction]:
        return [verdict.reduction for verdict in self.report.verdicts]

    def explain(self) -> str:
        return self.report.explain()
