"""repro — Quasi-Static Scheduling and software synthesis from Free-Choice Petri Nets.

A from-scratch Python reproduction of

    M. Sgroi, L. Lavagno, Y. Watanabe, A. Sangiovanni-Vincentelli,
    "Synthesis of Embedded Software Using Free-Choice Petri Nets",
    Design Automation Conference (DAC), 1999.

Subpackages
-----------
``repro.petrinet``
    Petri net data model, structure theory, T-/S-invariants, reachability,
    boundedness and liveness analysis.
``repro.sdf``
    Synchronous dataflow graphs, balance equations and fully static
    scheduling (the special case QSS generalizes).
``repro.qss``
    The paper's contribution: T-allocations, T-reductions, quasi-static
    schedulability, valid schedules and task partitioning.
``repro.codegen``
    Software synthesis: structured task IR, C emission and a cycle-level
    interpreter for the simulated target.
``repro.runtime``
    RTOS model, cycle cost model, event streams and reactive execution.
``repro.baselines``
    Comparison implementations (functional task partitioning, fully
    dynamic scheduling, safe-net single-task synthesis).
``repro.apps``
    Case studies, most importantly the ATM server of Section 5.
``repro.gallery``
    The nets of the paper's figures.
``repro.analysis``
    Table builders, code/buffer metrics and trade-off exploration.

Quickstart
----------
>>> from repro.gallery import figure3a_schedulable
>>> from repro.qss import compute_valid_schedule
>>> from repro.codegen import synthesize, emit_c
>>> schedule = compute_valid_schedule(figure3a_schedulable())
>>> program = synthesize(schedule)
>>> print(emit_c(program).source)      # doctest: +SKIP
"""

__version__ = "1.0.0"

__all__ = [
    "petrinet",
    "sdf",
    "qss",
    "codegen",
    "runtime",
    "baselines",
    "apps",
    "gallery",
    "analysis",
]
