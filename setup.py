"""Setuptools shim.

The canonical project metadata lives in ``pyproject.toml``; this file
exists so that editable installs work on environments whose setuptools
predates PEP 660 support (legacy ``pip install -e . --no-use-pep517``).
"""

from setuptools import setup

setup()
