#!/usr/bin/env python
"""ATM server case study: the full Section 5 experiment.

Reproduces the paper's evaluation end to end:

* builds the ATM-server FCPN (49 transitions, 41 places, 11 choices),
* verifies quasi-static schedulability and reports the 120 finite
  complete cycles of the valid schedule,
* synthesizes the two-task QSS implementation and the five-task
  functional-partitioning baseline,
* runs the 50-cell testbench on both and prints a Table-I style
  comparison (number of tasks, lines of C code, clock cycles).

Run with::

    python examples/atm_server.py [--cells 50] [--seed 2026] [--emit-c atm.c]
"""

from __future__ import annotations

import argparse

from repro.analysis import build_comparison, qss_metrics, total_buffer_tokens
from repro.apps.atm import (
    MODULE_PARTITION,
    build_atm_server_net,
    make_testbench,
)
from repro.codegen import emit_c
from repro.qss import analyse, partition_tasks


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--cells", type=int, default=50, help="testbench size")
    parser.add_argument("--seed", type=int, default=2026, help="workload seed")
    parser.add_argument(
        "--emit-c", metavar="FILE", help="write the generated QSS C code to FILE"
    )
    args = parser.parse_args()

    net = build_atm_server_net()
    print(net.summary())

    report = analyse(net)
    print(
        f"schedulable: {report.schedulable}; "
        f"{report.allocation_count} T-allocations, "
        f"{report.reduction_count} distinct T-reductions "
        f"(= finite complete cycles in the valid schedule)"
    )
    assert report.schedule is not None
    partition = partition_tasks(report.schedule)
    print(partition.describe())
    print(
        "static buffer slots implied by the schedule:",
        total_buffer_tokens(report.schedule),
    )

    events = make_testbench(cells=args.cells, seed=args.seed)
    cells = sum(1 for e in events if e.source == "t_cell")
    ticks = len(events) - cells
    print(f"testbench: {cells} cells + {ticks} ticks = {len(events)} events")

    table = build_comparison(net, MODULE_PARTITION, events, title="Table I (reproduced)")
    print()
    print(table.render())
    ratio_cycles = table.ratio(
        "clock_cycles", "QSS", "Functional task partitioning"
    )
    ratio_loc = table.ratio("lines_of_code", "QSS", "Functional task partitioning")
    print()
    print(
        f"functional partitioning needs {ratio_loc:.2f}x the code and "
        f"{ratio_cycles:.2f}x the cycles of the QSS implementation "
        "(paper: 1.31x and 1.26x)"
    )

    if args.emit_c:
        _, program = qss_metrics(net, events)
        with open(args.emit_c, "w", encoding="utf-8") as handle:
            handle.write(emit_c(program).source)
        print(f"wrote generated C to {args.emit_c}")


if __name__ == "__main__":
    main()
