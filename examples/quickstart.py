#!/usr/bin/env python
"""Quickstart: quasi-static scheduling and C synthesis in a few lines.

This walks the complete flow of the paper on the Figure 4 net (the one
whose generated C listing appears in Section 4):

1. build a Free-Choice Petri Net model of the specification,
2. check quasi-static schedulability and compute a valid schedule,
3. partition the schedule into tasks (one per independent input),
4. generate the C implementation,
5. execute the generated code on the simulated target for a few input
   events and print the cycle counts.

Run with::

    python examples/quickstart.py
"""

from __future__ import annotations

from repro.codegen import EmitOptions, ProgramExecutor, emit_c, make_resolver, synthesize
from repro.petrinet import NetBuilder, is_free_choice
from repro.qss import analyse, compute_valid_schedule, partition_tasks


def build_model():
    """The Figure 4 net: a source, a data-dependent choice, weighted arcs."""
    return (
        NetBuilder("quickstart")
        .source("t1", label="read input sample")
        .arc("t1", "p1")
        .arc("p1", "t2")                 # branch A of the if-then-else
        .arc("t2", "p2")
        .arc("p2", "t4", weight=2)       # t4 needs two results of t2
        .arc("p1", "t3")                 # branch B
        .arc("t3", "p3", weight=2)       # t3 produces two items at once
        .arc("p3", "t5")
        .build()
    )


def main() -> None:
    net = build_model()
    print(net.summary())
    print("free choice:", is_free_choice(net))

    # -- schedulability analysis -------------------------------------------
    report = analyse(net)
    print()
    print(report.explain())
    schedule = compute_valid_schedule(net)
    print(schedule.describe())

    # -- task partitioning and code generation --------------------------------
    partition = partition_tasks(schedule)
    print()
    print(partition.describe())
    program = synthesize(schedule)
    emission = emit_c(program, EmitOptions(standalone_loop=True))
    print()
    print("---- generated C " + "-" * 40)
    print(emission.source)
    print(f"generated lines of C code: {emission.lines_of_code}")

    # -- execute the generated code on the simulated target -----------------
    executor = ProgramExecutor(program)
    print("---- simulated execution " + "-" * 32)
    for outcome in ["t2", "t2", "t3", "t2", "t3"]:
        result = executor.activate_source("t1", make_resolver({"p1": outcome}))
        print(
            f"input event (choice {outcome}): fired {result.fired}, "
            f"{result.cycles} cycles"
        )


if __name__ == "__main__":
    main()
