#!/usr/bin/env python
"""Multirate dataflow: static SDF scheduling and its Petri-net view.

The paper grounds quasi-static scheduling in Lee's static scheduling of
Synchronous Dataflow: SDF graphs are marked-graph Petri nets, their
repetition vector is a T-invariant, and a static schedule is a finite
complete cycle (Figure 2).  This example builds a small sample-rate
converter pipeline (the classic 44.1 kHz -> 48 kHz style chain), shows

* the repetition vector from the balance equations,
* a periodic admissible sequential schedule (PASS) and its looped form,
* the buffer bounds the schedule implies,
* the equivalence with the Petri-net T-invariant after conversion, and
* what goes wrong with an inconsistent (unschedulable) rate assignment.

Run with::

    python examples/multirate_dataflow.py
"""

from __future__ import annotations

from repro.petrinet import t_invariants
from repro.sdf import (
    InconsistentSDFError,
    SDFGraph,
    compact_schedule,
    repetition_vector,
    sdf_to_petri,
    static_schedule,
    total_buffer_requirement,
)


def build_converter() -> SDFGraph:
    """A three-stage multirate chain: 2->3 upsampler feeding a 7->4 stage."""
    graph = SDFGraph("rate_converter")
    graph.add_actor("reader", cost=2)
    graph.add_actor("upsample_2_3", cost=5)
    graph.add_actor("filter_7_4", cost=9)
    graph.add_actor("writer", cost=2)
    graph.add_edge("reader", "upsample_2_3", production=2, consumption=2)
    graph.add_edge("upsample_2_3", "filter_7_4", production=3, consumption=7)
    graph.add_edge("filter_7_4", "writer", production=4, consumption=1)
    return graph


def main() -> None:
    graph = build_converter()
    print(graph)

    repetition = repetition_vector(graph)
    print("repetition vector:", repetition)

    schedule = static_schedule(graph)
    print("PASS (one iteration):", " ".join(schedule.sequence))
    print("looped schedule    :", compact_schedule(schedule.sequence))
    print("buffer bounds      :", schedule.buffer_bounds)
    print("total buffer slots :", total_buffer_requirement(schedule))
    print("iteration cost     :", schedule.cost)

    # The Petri-net view: the repetition vector is the minimal T-invariant.
    net = sdf_to_petri(graph)
    print()
    print("as a Petri net     :", net.summary())
    print("T-invariants       :", t_invariants(net))

    # An inconsistent rate assignment has no repetition vector at all.
    broken = SDFGraph("inconsistent")
    broken.add_actor("a")
    broken.add_actor("b")
    broken.add_edge("a", "b", production=2, consumption=3)
    broken.add_edge("a", "b", production=1, consumption=1)
    print()
    try:
        repetition_vector(broken)
    except InconsistentSDFError as error:
        print("inconsistent graph rejected as expected:", error)


if __name__ == "__main__":
    main()
