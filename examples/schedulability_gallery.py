#!/usr/bin/env python
"""Schedulability gallery: every net from the paper's figures, analysed.

For each figure net the example prints the structural classification,
the number of T-allocations and distinct T-reductions, the schedulability
verdict with diagnostics, and — when schedulable — the valid schedule.
The unschedulable nets are additionally executed under an adversarial
choice policy to show the unbounded token accumulation the paper warns
about.

Run with::

    python examples/schedulability_gallery.py
"""

from __future__ import annotations

from repro.gallery import paper_figures
from repro.petrinet import (
    Simulator,
    classify,
    coverability_analysis,
    make_adversarial_policy,
)
from repro.petrinet.exceptions import NotFreeChoiceError
from repro.qss import analyse


def main() -> None:
    for name, constructor in paper_figures().items():
        net = constructor()
        print("=" * 72)
        print(f"{name}: {net.summary()}")
        print(f"  class: {classify(net)}")
        try:
            report = analyse(net)
        except NotFreeChoiceError as error:
            print(f"  QSS not applicable: {error}")
            continue
        print(
            f"  {report.allocation_count} T-allocation(s), "
            f"{report.reduction_count} distinct T-reduction(s)"
        )
        if report.schedulable:
            assert report.schedule is not None
            print("  schedulable — valid schedule:")
            for cycle in report.schedule.cycles:
                print(f"    {cycle}")
        else:
            print("  NOT schedulable:")
            for verdict in report.failing_verdicts:
                print(f"    {verdict.explain()}")
            # Demonstrate the unbounded behaviour with an adversary that
            # always resolves the choice the same way.
            choice_place = net.choice_places()[0] if net.choice_places() else None
            if choice_place:
                preferred = net.postset_names(choice_place)[0]
                adversary = make_adversarial_policy([preferred, *net.source_transitions()])
                simulator = Simulator(net, policy=adversary)
                trace = simulator.run(max_steps=200)
                peak = max(trace.max_tokens().values(), default=0)
                print(
                    f"    adversarial simulation (always {preferred}): "
                    f"max tokens in a place after 200 firings = {peak}"
                )
            result = coverability_analysis(net)
            if not result.bounded:
                print(
                    "    coverability analysis confirms unbounded places: "
                    f"{result.unbounded_places}"
                )


if __name__ == "__main__":
    main()
